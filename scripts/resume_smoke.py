"""Resume smoke: SIGKILL a live run mid-checkpoint, resume, compare.

The hardest crash the run-directory design must survive is not a polite
``RunHandle.interrupt()`` but a ``kill -9`` while a seed is mid-write.
This script proves it end to end through the real CLI:

1. run the reference spec to completion in one process (``ref/``);
2. start the same spec in a child process (``killed/``), poll its run
   directory until the first checkpoint lines are durable, then SIGKILL
   the child with no warning;
3. ``python -m repro run --resume killed/`` in a fresh process;
4. assert the resumed ``records.json`` is bit-identical to the
   uninterrupted reference (costs/areas/delays/graphs — telemetry is
   attribution, not paper semantics, and legitimately differs).

Exit code 0 = the crash lost nothing.  Used by the CI ``resume-smoke``
job; run locally with ``PYTHONPATH=src python scripts/resume_smoke.py``.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPEC = {
    "name": "resume-smoke",
    "task": {"circuit_type": "adder", "n": 8, "delay_weight": 0.66},
    "methods": [
        {"method": "GA", "label": None, "params": {"population_size": 16}},
        {"method": "Random", "label": None, "params": {}},
    ],
    "budget": 40,
    "num_seeds": 1,
    "base_seed": 0,
    "seeds": None,
    "curve_points": 4,
    "engine": {"cache_dir": None, "workers": None, "parallel_seeds": 1},
}


def cli(*args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args], env=env, cwd=REPO, **kwargs
    )


def checkpointed_lines(run_dir):
    """Durable history lines across the run's cells (its checkpoints)."""
    pattern = os.path.join(run_dir, "cells", "*", "history.jsonl")
    total = 0
    for path in glob.glob(pattern):
        with open(path) as handle:
            total += sum(1 for line in handle if line.strip())
    return total


def load_essentials(records_path):
    """records.json minus telemetry (attribution differs across attempts)."""
    with open(records_path) as handle:
        payload = json.load(handle)
    essentials = []
    for record in payload["records"]:
        essentials.append({k: v for k, v in record.items() if k != "telemetry"})
    return essentials


def main() -> int:
    base = tempfile.mkdtemp(prefix="repro-resume-smoke-")
    spec_path = os.path.join(base, "spec.json")
    ref_dir = os.path.join(base, "ref")
    killed_dir = os.path.join(base, "killed")
    with open(spec_path, "w") as handle:
        json.dump(SPEC, handle)

    print("== reference run (uninterrupted)")
    assert cli("run", spec_path, "--out-dir", ref_dir).wait() == 0

    print("== victim run: SIGKILL after the first checkpoints are durable")
    victim = cli("run", spec_path, "--out-dir", killed_dir)
    deadline = time.time() + 120
    while time.time() < deadline:
        if checkpointed_lines(killed_dir) >= 3 or victim.poll() is not None:
            break
        time.sleep(0.01)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(f"   killed with {checkpointed_lines(killed_dir)} durable evaluations")
    else:
        # The run outraced the poll loop; a finished directory still must
        # resume as a clean no-op, so the comparison below stays valid.
        print("   victim finished before the kill; resume degrades to a no-op")

    print("== resume in a fresh process")
    assert cli("run", "--resume", killed_dir).wait() == 0

    reference = load_essentials(os.path.join(ref_dir, "records.json"))
    resumed = load_essentials(os.path.join(killed_dir, "records.json"))
    if reference != resumed:
        print("FAIL: resumed records differ from the uninterrupted reference")
        return 1
    print(f"OK: {len(resumed)} resumed records bit-identical to the reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
