"""Figure 6: area-delay Pareto frontiers in the realistic 8nm setting.

CircuitVAE designs adders at several delay weights against the scaled-8nm
library with datapath IO timings, searching with the open flow; the most
promising designs are then re-evaluated with the commercial-tool
emulation (the domain gap of Sec. 5.4).  The frontier is compared against
(a) the tool's own provided adders and (b) human-designed classics.

Paper's claim to check: CircuitVAE's frontier Pareto-dominates both
baselines (no baseline point is strictly better in both area and delay
than every CircuitVAE point; and for each baseline point some CircuitVAE
point is at least as good in both axes).
"""

import numpy as np
import pytest

from repro.circuits import realistic_adder_task
from repro.core import CircuitVAEOptimizer
from repro.opt import CircuitSimulator
from repro.synth import CommercialTool, scaled_library
from repro.utils.plotting import ascii_scatter, format_series_csv

from common import BUDGET, REAL_BITS, once, vae_config

# The paper sweeps {0.3, 0.6, 0.95}.  At the scaled-8nm library the paper's
# fixed cost normalization (area/100, delay*10) weighs delay heavily, so two
# lower weights are added to cover the area end of the frontier.
REAL_WEIGHTS = [0.02, 0.08, 0.3, 0.6, 0.95]


def pareto_front(points):
    """Non-dominated subset of (area, delay) pairs."""
    front = []
    for p in points:
        if not any(q[0] <= p[0] and q[1] <= p[1] and q != p for q in points):
            front.append(p)
    return sorted(front)


def dominates_or_ties(a, b):
    return a[0] <= b[0] + 1e-9 and a[1] <= b[1] + 1e-9


def run_realworld():
    n = REAL_BITS
    tool = CommercialTool(scaled_library("8nm"), realistic_adder_task(n).io_timing)

    vae_points = []
    for omega in REAL_WEIGHTS:
        task = realistic_adder_task(n, delay_weight=omega)
        sim = CircuitSimulator(task, budget=BUDGET)
        optimizer = CircuitVAEOptimizer(vae_config())
        optimizer.run(sim, np.random.default_rng(int(omega * 100)))
        # Re-evaluate the top search designs with the commercial tool.
        top = sorted(sim.history, key=lambda e: e.cost)[:5]
        for evaluation in top:
            result = tool.evaluate(evaluation.graph)
            vae_points.append((result.area_um2, result.delay_ns))

    tool_points = [
        (r.area_um2, r.delay_ns) for r in tool.provided_adders(n).values()
    ]
    human_points = tool_points  # classics ARE the human designs; keep both labels
    return pareto_front(vae_points), sorted(tool_points)


def test_fig6_realworld(benchmark):
    vae_front, baseline_points = once(benchmark, run_realworld)
    print()
    print(ascii_scatter(
        {
            "CircuitVAE": ([p[0] for p in vae_front], [p[1] for p in vae_front]),
            "tool/human": ([p[0] for p in baseline_points], [p[1] for p in baseline_points]),
        },
        title="Fig.6: commercial-tool-evaluated area-delay frontier (8nm, datapath timing)",
        xlabel="area um2", ylabel="delay ns",
    ))
    print(format_series_csv(
        ["source", "area_um2", "delay_ns"],
        [["vae", a, d] for a, d in vae_front] + [["baseline", a, d] for a, d in baseline_points],
    ))
    # Reproduction checks (Pareto dominance, Fig. 6's claim):
    # (1) no CircuitVAE frontier point is strictly dominated by a baseline;
    for v in vae_front:
        assert not any(
            b[0] < v[0] - 1e-9 and b[1] < v[1] - 1e-9 for b in baseline_points
        ), (v, baseline_points)
    # (2) the majority of baseline designs are dominated-or-tied by some
    #     CircuitVAE design.
    dominated = sum(
        any(dominates_or_ties(v, b) for v in vae_front) for b in baseline_points
    )
    assert dominated * 2 >= len(baseline_points), (vae_front, baseline_points)
