"""Figure 1: a sample evolution of adders discovered by CircuitVAE.

Starts the search space around the Sklansky structure (the paper's Fig. 1
starting point) and prints the sequence of strictly-improving designs the
optimizer discovers, from the seed to the best found, with their costs —
the flip-book the paper shows.
"""

import numpy as np
import pytest

from repro.circuits import adder_task
from repro.core import CircuitVAEOptimizer
from repro.opt import CircuitSimulator
from repro.prefix import sklansky
from repro.utils.plotting import render_prefix_graph

from common import BITWIDTHS, BUDGET, once, vae_config


def run_evolution():
    n = max(BITWIDTHS)
    task = adder_task(n, 0.66)
    sim = CircuitSimulator(task, budget=BUDGET)
    optimizer = CircuitVAEOptimizer(vae_config())
    optimizer.run(sim, np.random.default_rng(0))

    seed_cost = sim.query(sklansky(n)).cost  # cached if already seen
    improvements = []
    best = float("inf")
    for evaluation in sim.history:
        if evaluation.cost < best:
            best = evaluation.cost
            improvements.append(evaluation)
    return n, seed_cost, improvements


def test_fig1_evolution(benchmark):
    n, seed_cost, improvements = once(benchmark, run_evolution)
    print()
    print(f"Fig.1: evolution of {n}-bit adders (Sklansky seed cost {seed_cost:.3f})")
    # Print the seed, a few milestones, and the final best.
    milestones = improvements[:: max(1, len(improvements) // 4)][:4] + [improvements[-1]]
    for evaluation in milestones:
        print(render_prefix_graph(
            evaluation.graph,
            label=f"sim #{evaluation.sim_index}: cost {evaluation.cost:.3f}",
        ))
        print()
    # Reproduction checks: a strictly improving sequence ending below the
    # Sklansky seed.
    costs = [e.cost for e in improvements]
    assert all(a > b for a, b in zip(costs[:-1], costs[1:]))
    assert costs[-1] < seed_cost
