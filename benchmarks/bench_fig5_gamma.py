"""Figure 5: the effect of the prior-regularization weight gamma.

Trains one CircuitVAE on an initial dataset, then runs latent gradient
descent at several fixed gammas plus the log-uniform default, reporting
per setting: mean final latent norm, mean *predicted* cost, mean *actual*
cost of the decoded designs, and the overfitting gap (actual - predicted).

Paper's findings to check: low gamma -> trajectories leave the data
region (large norms) and actual cost far exceeds predicted (surrogate
overfitting); high gamma -> small norms, small gap, limited exploration;
the log-uniform band gives the best actual costs.
"""

import numpy as np
import pytest

from repro.circuits import adder_task
from repro.core import CircuitVAEOptimizer, SearchConfig, build_initial_dataset, train_model
from repro.core.search import initialize_latents, latent_gradient_search
from repro.opt import CircuitSimulator
from repro.utils.tables import format_table

from common import BITWIDTHS, INITIAL, once, vae_config

GAMMAS = [0.001, 0.01, 0.1, 1.0]


def run_gamma_sweep():
    n = min(BITWIDTHS)
    task = adder_task(n, 0.66)
    rng = np.random.default_rng(0)
    sim = CircuitSimulator(task, budget=None)
    cfg = vae_config()
    optimizer = CircuitVAEOptimizer(cfg)
    model = optimizer._ensure_model(n, rng)
    dataset = build_initial_dataset(sim, INITIAL, rng, k=cfg.k)
    from dataclasses import replace

    train_model(model, dataset, rng, replace(cfg.train, epochs=40))

    # The training-data region of latent space (the gray cloud in Fig. 5).
    from repro import nn

    with nn.no_grad():
        data_latents, _ = model.encode(dataset.grids())
    data_latents = data_latents.data
    data_norm = float(np.linalg.norm(data_latents, axis=1).mean())

    def distance_to_data(z):
        diffs = z[:, None, :] - data_latents[None, :, :]
        return float(np.sqrt((diffs ** 2).sum(-1)).min(axis=1).mean())

    rows = []
    stats = {}
    settings = [(f"{g}", g, g) for g in GAMMAS] + [("log-uniform[0.01,0.1]", 0.01, 0.1)]
    for label, lo, hi in settings:
        search = SearchConfig(
            num_parallel=16, num_steps=60, capture_every=60, step_size=0.2,
            gamma_low=lo, gamma_high=hi,
        )
        z0 = initialize_latents(model, dataset, search.num_parallel, np.random.default_rng(1))
        trace = latent_gradient_search(model, z0, np.random.default_rng(2), search)
        finals = trace.trajectories[-1]
        norms = np.linalg.norm(finals, axis=1)
        dist = distance_to_data(finals)
        predicted = trace.predicted_costs[-search.num_parallel:] * model.cost_std + model.cost_mean
        designs = model.sample_designs(finals, np.random.default_rng(3))
        actual = np.array([sim.query(d).cost for d in designs])
        gap = float(actual.mean() - predicted.mean())
        stats[label] = dict(norm=float(norms.mean()), dist=dist, gap=gap, actual=float(actual.mean()))
        rows.append([
            label, f"{norms.mean():.2f}", f"{dist:.2f}", f"{predicted.mean():.3f}",
            f"{actual.mean():.3f}", f"{gap:+.3f}",
        ])
    return data_norm, rows, stats


def test_fig5_gamma(benchmark):
    data_norm, rows, stats = once(benchmark, run_gamma_sweep)
    print()
    print(f"Fig.5: latent search vs gamma (training-data latent norm ~ {data_norm:.2f})")
    print(format_table(
        ["gamma", "final ||z||", "dist to data", "predicted cost", "actual cost", "overfit gap"],
        rows,
    ))
    # Reproduction checks.  The paper's mechanism: trajectories that end
    # far from the training data overfit the surrogate (actual >> predicted).
    # (1) gamma controls the endpoint: lower gamma ends farther from the
    #     origin than higher gamma.
    assert stats["0.001"]["norm"] > stats["1.0"]["norm"]
    # (2) overfitting tracks distance-to-data: the setting ending farthest
    #     from the data gaps worse than the setting ending nearest.
    farthest = max(stats, key=lambda k: stats[k]["dist"])
    nearest = min(stats, key=lambda k: stats[k]["dist"])
    assert stats[farthest]["gap"] > stats[nearest]["gap"], stats
