"""Microbench: hierarchical tracing must be near-free when off.

The :mod:`repro.obs` tracer is threaded through the engine's hot paths
(every query, every stage timer, every pool job), so its *disabled* cost
is a correctness property, not a tuning detail.  This bench measures it
two ways and writes a ``BENCH_obs_overhead.json`` record (consumed by
the CI perf-smoke job, which uploads it as an artifact):

1. **Off-path estimate (the gate).**  With no tracer active,
   ``trace.span(name)`` is one global ``is None`` check returning a
   shared null span.  We time that call directly, multiply by the span
   count an actual traced run of the same spec produces, and divide by
   the untraced runtime: the fraction of a run the disabled hooks can
   possibly cost.  Asserted ``< 5%`` always — it is a deterministic
   nanoseconds-scale quantity, safe to gate on shared runners.
2. **On/off wall-clock ratio.**  The same tiny spec run durably with
   tracing on (default) vs ``REPRO_TRACE=0``, best-of-rounds.  Recorded
   for the artifact; gated only under ``REPRO_BENCH_ASSERT_OBS=1``
   because whole-run wall-clock on shared CI runners is too noisy for a
   hard threshold.
"""

import json
import os
import shutil
import tempfile
import time

from repro.api import Session
from repro.api.cli import bench_presets
from repro.obs import trace
from repro.obs.sink import read_trace

from _record import read_record, record_path, write_record
from common import once

OUT_PATH = record_path("obs_overhead")
ROUNDS = 3
NULL_SPAN_CALLS = 200_000
OVERHEAD_LIMIT = 0.05  # the acceptance gate: < 5% when tracing is off


def _timed_run(session, spec, out_dir=None) -> float:
    start = time.perf_counter()
    session.run(spec, out_dir=out_dir)
    return time.perf_counter() - start


def _null_span_seconds() -> float:
    """Per-call cost of the disabled ``trace.span`` fast path."""
    assert not trace.active(), "microbench requires tracing to be off"
    span = trace.span  # attribute lookup outside the loop, like call sites
    start = time.perf_counter()
    for _ in range(NULL_SPAN_CALLS):
        with span("bench"):
            pass
    return (time.perf_counter() - start) / NULL_SPAN_CALLS


def run_obs_overhead():
    spec = bench_presets()["tiny"]
    saved_env = os.environ.get("REPRO_TRACE")
    tmp = tempfile.mkdtemp(prefix="bench_obs_")
    try:
        with Session() as session:
            _timed_run(session, spec)  # warm caches, imports, pools

            os.environ["REPRO_TRACE"] = "0"
            off_s = min(
                _timed_run(session, spec, out_dir=os.path.join(tmp, f"off{i}"))
                for i in range(ROUNDS)
            )
            os.environ.pop("REPRO_TRACE")
            on_dirs = [os.path.join(tmp, f"on{i}") for i in range(ROUNDS)]
            on_s = min(
                _timed_run(session, spec, out_dir=d) for d in on_dirs
            )
            spans = read_trace(os.path.join(on_dirs[0], "trace.jsonl"))
            assert spans, "traced run produced no spans"

        per_call_s = _null_span_seconds()
        overhead_off = per_call_s * len(spans) / off_s
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_TRACE", None)
        else:
            os.environ["REPRO_TRACE"] = saved_env
        shutil.rmtree(tmp, ignore_errors=True)

    stats = {
        "spec": spec.name,
        "spans": len(spans),
        "null_span_ns": per_call_s * 1e9,
        "untraced_s": off_s,
        "traced_s": on_s,
        "overhead_off_fraction": overhead_off,
        "overhead_on_fraction": on_s / off_s - 1.0,
        "limit": OVERHEAD_LIMIT,
        "cpus": os.cpu_count() or 1,
    }
    write_record("obs_overhead", stats)

    assert overhead_off < OVERHEAD_LIMIT, stats
    return stats


def test_obs_overhead(benchmark):
    stats = once(benchmark, run_obs_overhead)
    print()
    print(f"obs overhead: {stats['spans']} spans over the tiny spec")
    print(
        f"  disabled span call {stats['null_span_ns']:8.1f} ns "
        f"-> {stats['overhead_off_fraction']:.4%} of the untraced run "
        f"(gate < {stats['limit']:.0%})"
    )
    print(
        f"  untraced {stats['untraced_s'] * 1000:8.1f} ms   "
        f"traced {stats['traced_s'] * 1000:8.1f} ms "
        f"({stats['overhead_on_fraction']:+.1%})"
    )
    print(f"  record -> {OUT_PATH}")
    if os.environ.get("REPRO_BENCH_ASSERT_OBS") == "1":
        assert stats["overhead_on_fraction"] < OVERHEAD_LIMIT, stats


if __name__ == "__main__":
    run_obs_overhead()
    print(json.dumps(read_record("obs_overhead"), indent=2))
