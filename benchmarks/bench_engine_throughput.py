"""Engine microbench: batched/parallel/persistent evaluation throughput.

Not a paper figure — this measures the `repro.engine` subsystem itself on
cold and warm batches of unique legalized designs:

* **cold serial** — plain ``CircuitSimulator``, one synthesis at a time;
* **cold pooled** — ``EngineSimulator`` with a 4-worker synthesis pool
  plus the vectorized population fast path (the acceptance target is
  >= 2x wall-clock whenever the host has >= 2 cores; single-core hosts
  report the speedup line for the record rather than asserting it);
* **warm disk** — a *fresh* engine pointed at the first engine's cache
  directory: every design must be served from disk with zero new
  synthesis calls.

Correctness (identical evaluations in all three modes) is asserted here
and, independently, in ``tests/test_engine.py``.
"""

import os
import tempfile
import time

import numpy as np

from repro.circuits import adder_task
from repro.engine import EvaluationEngine
from repro.opt import CircuitSimulator
from repro.prefix import unique_random_graphs

from common import BITWIDTHS, once

WORKERS = 4
BATCH = 64


def run_throughput():
    n = max(BITWIDTHS)
    task = adder_task(n, 0.66)
    rng = np.random.default_rng(7)
    graphs = unique_random_graphs(n, BATCH, rng, density_low=0.15, density_high=0.65)

    serial_sim = CircuitSimulator(task, budget=None)
    start = time.perf_counter()
    serial = serial_sim.query_many(graphs)
    serial_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-engine-bench-") as cache_dir:
        with EvaluationEngine(cache_dir=cache_dir, workers=WORKERS) as engine:
            pooled_sim = engine.simulator(task)
            start = time.perf_counter()
            pooled = pooled_sim.query_many(graphs)
            pooled_s = time.perf_counter() - start

        # Fresh engine + fresh simulator on the same cache dir: warm disk.
        with EvaluationEngine(cache_dir=cache_dir, workers=1) as engine:
            warm_sim = engine.simulator(task)
            start = time.perf_counter()
            warm = warm_sim.query_many(graphs)
            warm_s = time.perf_counter() - start
            warm_synth_calls = warm_sim.telemetry.synth_calls

    for a, b in zip(serial, pooled):
        assert a.cost == b.cost and a.sim_index == b.sim_index
    for a, b in zip(serial, warm):
        assert a.cost == b.cost and a.sim_index == b.sim_index
    assert warm_synth_calls == 0, "warm disk cache must perform no synthesis"

    return {
        "n": n,
        "batch": BATCH,
        "serial_s": serial_s,
        "pooled_s": pooled_s,
        "warm_s": warm_s,
        "pooled_speedup": serial_s / pooled_s,
        "warm_speedup": serial_s / warm_s,
        "cpus": os.cpu_count() or 1,
    }


def test_engine_throughput(benchmark):
    stats = once(benchmark, run_throughput)
    print()
    print(
        f"engine throughput: n={stats['n']} batch={stats['batch']} "
        f"({stats['cpus']} CPUs, {WORKERS} workers)"
    )
    print(f"  cold serial      {stats['serial_s'] * 1000:8.1f} ms")
    print(
        f"  cold pooled      {stats['pooled_s'] * 1000:8.1f} ms "
        f"({stats['pooled_speedup']:.2f}x)"
    )
    print(
        f"  warm disk cache  {stats['warm_s'] * 1000:8.1f} ms "
        f"({stats['warm_speedup']:.2f}x, 0 synthesis calls)"
    )
    # The warm cache always wins big; that is hardware-independent.
    assert stats["warm_speedup"] > 2.0
    # The engine fast path (vectorized batches + worker pool) must beat
    # the serial loop on any multi-core host, so the gate auto-enables
    # when the machine has >= 2 CPUs.  REPRO_BENCH_ASSERT_SPEEDUP=1
    # forces it (single-core included, for the record), =0 disables it.
    gate = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP")
    if gate == "1" or (gate != "0" and stats["cpus"] >= 2):
        assert stats["pooled_speedup"] >= 2.0, stats
