"""Microbench: recorded training loops + stacked replica training.

PR 5's engine (``repro.nn.compile``) removed per-op Python dispatch from
one training step; this bench gates the two layers built on top of it:

* **recorded loop** (:mod:`repro.nn.loop`) — replays a whole checkpoint
  segment per Python entry: pre-drawn rng, flat parameter/Adam state,
  dataset-level im2col.  Contract: *bitwise identical* to calling the
  compiled step once per step.  Gate: **>= 1.5x** over the per-step
  compiled path on a full retrain.
* **stacked replicas** (:mod:`repro.core.replicas` /
  :mod:`repro.nn.vmap`) — trains K architecturally identical models as
  one batched program with a leading replica axis.  Contract:
  per-replica loss curves within **1e-10** of the eager reference.
  Gate: **>= 2x** over serial replica training, where "serial" is the
  per-replica per-step compiled path — PR 5's engine, i.e. exactly what
  both kill switches restore (the opt-out leg below proves that
  restoration bit-identical).

Both gates measure the overhead-dominated regime the fast paths target
(tiny model, small batches, many steps — per-step Python glue is the
cost being removed); at BLAS-bound scales the loop converges to the
program's own compute and the gates would measure the machine, not the
code.

Always asserted, at every scale:

* loop ON vs loop OFF: bit-identical loss curves and final parameters;
* ``train_replicas`` under both kill switches vs per-replica
  ``train_model`` with the loop disabled (PR 5 behavior): bit-identical;
* stacked replicas vs the eager tape reference: curves within 1e-10;
* compiled vs eager reference: curves within 1e-10.

Environment knobs:

* ``REPRO_BENCH_TRAIN_EPOCHS`` — timed epochs (default 32).  The
  speedup gates only arm at 4+ epochs; CI's perf-smoke runs 2 epochs,
  where only the equivalence contracts are asserted and the record is
  still written.
* ``REPRO_BENCH_REPLICAS`` — replica count K (default 4, the gated
  configuration).
* ``REPRO_BENCH_ASSERT_SPEEDUP=0`` — disable the speedup gates (the
  record is still written; equivalence is always asserted).
"""

import os
import time

import numpy as np

import repro.core.replicas  # noqa: F401  (fast-path contract: bench imports)
import repro.nn.loop  # noqa: F401  (fast-path contract: bench imports)
from repro import nn
from repro.core.dataset import CircuitDataset
from repro.core.training import TrainConfig, train_model, train_replicas
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph

from _record import record_path, write_record
from common import once

EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "32"))
REPLICAS = int(os.environ.get("REPRO_BENCH_REPLICAS", "4"))
OUT_PATH = record_path("loop_compile")
LOOP_SPEEDUP_TARGET = 1.5
STACKED_SPEEDUP_TARGET = 2.0
N = 8
DATASET = 16
BATCH = 2  # 8 steps/epoch: the dispatch-bound regime the loop removes
EQUIV_EPOCHS = 4
VCFG = dict(n=N, base_channels=2, hidden_dim=16, latent_dim=4)
CURVES = ("total", "reconstruction", "kl", "cost")

_ENGINE_KNOBS = ("REPRO_COMPILED_TRAIN", "REPRO_COMPILED_LOOP", "REPRO_STACKED_REPLICAS")


def _engines(**knobs):
    """Set engine kill switches for one call, restoring after."""

    class _Ctx:
        def __enter__(self):
            self._saved = {k: os.environ.get(k) for k in _ENGINE_KNOBS}
            for key, value in knobs.items():
                os.environ[key] = value
            return self

        def __exit__(self, *exc):
            for key, value in self._saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    return _Ctx()


def _dataset(seed):
    rng = np.random.default_rng(seed)
    ds = CircuitDataset()
    while len(ds) < DATASET:
        g = random_graph(N, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    return ds


def _fixtures(count):
    """Deterministic per-replica (model, dataset, rng, optimizer) sets."""
    models = [
        CircuitVAEModel(VAEConfig(**VCFG), np.random.default_rng(10 + k))
        for k in range(count)
    ]
    datasets = [_dataset(k) for k in range(count)]
    rngs = [np.random.default_rng(20 + k) for k in range(count)]
    optimizers = [nn.Adam(m.parameters(), lr=1e-3) for m in models]
    return models, datasets, rngs, optimizers


def _curves(stats):
    return {name: np.asarray(getattr(stats, name)) for name in CURVES}


def _assert_bitwise(mine, reference, label):
    for name in CURVES:
        assert np.array_equal(mine[name], reference[name]), (
            f"{label}: curve {name!r} is not bit-identical"
        )


def _assert_close(mine, reference, label):
    for name in CURVES:
        np.testing.assert_allclose(
            mine[name], reference[name], rtol=1e-10, atol=1e-12,
            err_msg=f"{label}: curve {name!r} drifts beyond 1e-10",
        )


def _train_grid(epochs, **knobs):
    """Per-replica train_model calls under the given engine knobs."""
    models, datasets, rngs, optimizers = _fixtures(REPLICAS)
    config = TrainConfig(epochs=epochs, batch_size=BATCH)
    out = []
    with _engines(**knobs):
        for model, ds, rng, opt in zip(models, datasets, rngs, optimizers):
            stats = train_model(model, ds, rng, config, optimizer=opt)
            out.append((_curves(stats), model.state_dict(), stats))
    return out


def _check_equivalence():
    config_epochs = EQUIV_EPOCHS
    eager = _train_grid(config_epochs, REPRO_COMPILED_TRAIN="0")
    pr5 = _train_grid(
        config_epochs, REPRO_COMPILED_TRAIN="1", REPRO_COMPILED_LOOP="0"
    )
    looped = _train_grid(
        config_epochs, REPRO_COMPILED_TRAIN="1", REPRO_COMPILED_LOOP="1"
    )

    curve_dev = 0.0
    for (e_curves, _, _), (p_curves, p_state, p_stats), (l_curves, l_state, l_stats) in zip(
        eager, pr5, looped
    ):
        # Recorded loop: bitwise vs the per-step compiled path it replays.
        assert l_stats.compiled and len(l_stats.loop_seconds) > 0
        _assert_bitwise(l_curves, p_curves, "recorded loop vs per-step")
        for name, value in l_state.items():
            assert np.array_equal(value, p_state[name]), (
                f"recorded loop vs per-step: parameter {name!r} differs"
            )
        # Compiled engine vs the eager tape: the 1e-10 contract.
        _assert_close(p_curves, e_curves, "compiled vs eager")
        for name in CURVES:
            a, b = e_curves[name], p_curves[name]
            curve_dev = max(curve_dev, float(np.max(np.abs(b - a) / np.abs(a))))

    # Stacked replicas: one batched program, curves vs eager within 1e-10.
    models, datasets, rngs, optimizers = _fixtures(REPLICAS)
    config = TrainConfig(epochs=config_epochs, batch_size=BATCH)
    with _engines(REPRO_COMPILED_TRAIN="1", REPRO_STACKED_REPLICAS="1"):
        stacked_stats = train_replicas(models, datasets, rngs, config, optimizers)
    assert all(s.stacked for s in stacked_stats), "stacked path did not engage"
    stacked_dev = 0.0
    for stats, (e_curves, _, _) in zip(stacked_stats, eager):
        s_curves = _curves(stats)
        _assert_close(s_curves, e_curves, "stacked vs eager")
        for name in CURVES:
            a, b = e_curves[name], s_curves[name]
            stacked_dev = max(stacked_dev, float(np.max(np.abs(b - a) / np.abs(a))))

    # Kill switches: train_replicas with both switches thrown must be
    # bit-identical to PR 5 behavior (per-replica per-step compiled).
    models, datasets, rngs, optimizers = _fixtures(REPLICAS)
    with _engines(
        REPRO_COMPILED_TRAIN="1",
        REPRO_COMPILED_LOOP="0",
        REPRO_STACKED_REPLICAS="0",
    ):
        serial_stats = train_replicas(models, datasets, rngs, config, optimizers)
    for stats, model, (_, p_state, _) in zip(serial_stats, models, pr5):
        assert not stats.stacked
        state = model.state_dict()
        for name, value in p_state.items():
            assert np.array_equal(state[name], value), (
                f"kill-switch path: parameter {name!r} differs from PR 5 behavior"
            )
    for stats, (p_curves, _, _) in zip(serial_stats, pr5):
        _assert_bitwise(_curves(stats), p_curves, "kill-switch path vs PR 5")

    return curve_dev, stacked_dev


class _SteadyLoop:
    """Steady-state single-model retrain under one loop setting."""

    def __init__(self, loop):
        self.loop = loop
        self.model = CircuitVAEModel(VAEConfig(**VCFG), np.random.default_rng(1))
        self.optimizer = nn.Adam(self.model.parameters(), lr=1e-3)
        self.ds = _dataset(0)
        self.rng = np.random.default_rng(2)
        self.config = TrainConfig(epochs=EPOCHS, batch_size=BATCH)
        self()  # warm-up (compiles once)

    def __call__(self):
        with _engines(REPRO_COMPILED_TRAIN="1", REPRO_COMPILED_LOOP=self.loop):
            start = time.perf_counter()
            train_model(
                self.model, self.ds, self.rng, self.config, optimizer=self.optimizer
            )
            return time.perf_counter() - start


class _SteadyReplicas:
    """Steady-state K-replica retrain: stacked vs the PR 5 serial path."""

    def __init__(self, stacked):
        self.stacked = stacked
        self.models, self.datasets, self.rngs, self.optimizers = _fixtures(REPLICAS)
        self.config = TrainConfig(epochs=EPOCHS, batch_size=BATCH)
        self()  # warm-up

    def __call__(self):
        knobs = dict(REPRO_COMPILED_TRAIN="1", REPRO_STACKED_REPLICAS=self.stacked)
        if self.stacked == "0":
            knobs["REPRO_COMPILED_LOOP"] = "0"  # serial baseline = PR 5 engine
        with _engines(**knobs):
            start = time.perf_counter()
            train_replicas(
                self.models, self.datasets, self.rngs, self.config, self.optimizers
            )
            return time.perf_counter() - start


def run_loop_compile():
    curve_dev, stacked_dev = _check_equivalence()

    # Min-of-rounds per configuration: load spikes only ever add time,
    # so the minimum is the robust steady-state estimator.
    step_trainer = _SteadyLoop("0")
    step_s = min(step_trainer() for _ in range(5))
    loop_trainer = _SteadyLoop("1")
    loop_s = min(loop_trainer() for _ in range(5))

    serial = _SteadyReplicas("0")
    serial_s = min(serial() for _ in range(5))
    stacked = _SteadyReplicas("1")
    stacked_s = min(stacked() for _ in range(5))

    steps = EPOCHS * (DATASET // BATCH)
    stats = {
        "n": N,
        "dataset": DATASET,
        "batch_size": BATCH,
        "epochs": EPOCHS,
        "steps": steps,
        "replicas": REPLICAS,
        "model": dict(VCFG),
        "per_step_s": step_s,
        "loop_s": loop_s,
        "loop_speedup": step_s / loop_s,
        "serial_replicas_s": serial_s,
        "stacked_replicas_s": stacked_s,
        "stacked_speedup": serial_s / stacked_s,
        "loop_ms_per_step": loop_s / steps * 1e3,
        "per_step_ms_per_step": step_s / steps * 1e3,
        "compiled_curve_max_rel_dev": curve_dev,
        "stacked_curve_max_rel_dev": stacked_dev,
        "cpus": os.cpu_count() or 1,
    }
    write_record("loop_compile", stats)
    return stats


def test_loop_compile(benchmark):
    stats = once(benchmark, run_loop_compile)
    print()
    print(
        f"recorded loop / stacked replicas: n={stats['n']} "
        f"batch={stats['batch_size']} K={stats['replicas']} "
        f"({stats['cpus']} CPUs)"
    )
    print(f"  per-step compiled {stats['per_step_ms_per_step']:8.3f} ms/step")
    print(
        f"  recorded loop     {stats['loop_ms_per_step']:8.3f} ms/step "
        f"({stats['loop_speedup']:.2f}x)"
    )
    print(
        f"  serial K={stats['replicas']}        {stats['serial_replicas_s']*1e3:8.1f} ms/retrain"
    )
    print(
        f"  stacked K={stats['replicas']}       {stats['stacked_replicas_s']*1e3:8.1f} ms/retrain "
        f"({stats['stacked_speedup']:.2f}x)"
    )
    print(
        f"  stacked-vs-eager curve max rel dev {stats['stacked_curve_max_rel_dev']:.2e} "
        f"(contract: 1e-10)"
    )
    print(f"  record -> {OUT_PATH}")
    # Equivalence (bit-identity + 1e-10 curves + kill switches) is
    # asserted inside run_loop_compile at every scale; the throughput
    # gates arm once there are enough timed steps for a stable
    # measurement.
    if EPOCHS >= 4 and os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") != "0":
        assert stats["loop_speedup"] >= LOOP_SPEEDUP_TARGET, stats
        assert stats["stacked_speedup"] >= STACKED_SPEEDUP_TARGET, stats
