"""Microbench: compiled CircuitVAE train step vs the eager tape.

Measures ``repro.core.training.train_model`` on the paper's CNN-VAE
configuration (the architecture of Sec. 5.1 at this repo's CPU scale,
paper training hyperparameters: beta=0.01, lambda=10, Adam 1e-3, batch
64) under both execution engines:

* **eager** — the define-by-run tape, the numerical reference
  (``REPRO_COMPILED_TRAIN=0``);
* **compiled** — the traced graph executor (:mod:`repro.nn.compile`):
  fused kernels, liveness-arena buffer reuse, shape-guarded replay.

Asserts the **equivalence contract** (identical per-epoch loss curves to
1e-10 across both engines, same seeds) and the **>= 2x steady-state
speedup gate**, then writes a ``BENCH_vae_training.json`` record (the CI
perf-smoke job uploads it as an artifact).

Environment knobs:

* ``REPRO_BENCH_TRAIN_EPOCHS`` — timed epochs per engine (default 8).
  The speedup gate only arms at 4+ epochs (enough replay steps to
  amortize timing noise); CI's perf-smoke job runs 2 epochs, where only
  the equivalence contract is asserted and the record is still written.
* ``REPRO_BENCH_ASSERT_SPEEDUP=0`` — disable the speedup gate (the
  record is still written; equivalence is always asserted).
"""

import json
import os
import time

import numpy as np

from repro.core.dataset import CircuitDataset
from repro.core.training import TrainConfig, train_model
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph

from _record import record_path, write_record
from common import once

EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "8"))
OUT_PATH = record_path("vae_training")
SPEEDUP_TARGET = 2.0
N = 8  # the repo's standard adder bitwidth (tests/figures)
DATASET = 128
BATCH = 64  # paper batch size -> 2 steps per epoch
EQUIV_EPOCHS = 4


def _dataset():
    rng = np.random.default_rng(0)
    ds = CircuitDataset()
    while len(ds) < DATASET:
        g = random_graph(N, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    return ds


def _fit(ds, compiled, epochs):
    """One fresh train_model call under the chosen engine."""
    os.environ["REPRO_COMPILED_TRAIN"] = "1" if compiled else "0"
    try:
        model = CircuitVAEModel(VAEConfig(n=N), np.random.default_rng(1))
        stats = train_model(
            model, ds, np.random.default_rng(2),
            TrainConfig(epochs=epochs, batch_size=BATCH),
        )
    finally:
        os.environ.pop("REPRO_COMPILED_TRAIN", None)
    return stats


class _SteadyTrainer:
    """One engine's steady-state train_model runner.

    One model + optimizer carried across calls, exactly like the
    acquisition loop of Algorithm 1 — the warm-up call pays the
    one-time trace/compile, the timed rounds measure pure replay.
    """

    def __init__(self, ds, compiled, epochs):
        from repro import nn

        self.ds = ds
        self.env = "1" if compiled else "0"
        self.model = CircuitVAEModel(VAEConfig(n=N), np.random.default_rng(1))
        self.optimizer = nn.Adam(self.model.parameters(), lr=1e-3)
        self.rng = np.random.default_rng(2)
        self.config = TrainConfig(epochs=epochs, batch_size=BATCH)
        self()  # warm-up (compiles when compiled)

    def __call__(self):
        os.environ["REPRO_COMPILED_TRAIN"] = self.env
        try:
            start = time.perf_counter()
            train_model(
                self.model, self.ds, self.rng, self.config, optimizer=self.optimizer
            )
            return time.perf_counter() - start
        finally:
            os.environ.pop("REPRO_COMPILED_TRAIN", None)


def run_vae_training():
    ds = _dataset()

    # -- equivalence contract: identical loss curves to 1e-10 ----------
    eager_ref = _fit(ds, compiled=False, epochs=EQUIV_EPOCHS)
    compiled_ref = _fit(ds, compiled=True, epochs=EQUIV_EPOCHS)
    assert compiled_ref.compiled and not eager_ref.compiled
    curve_dev = 0.0
    for name in ("total", "reconstruction", "kl", "cost"):
        a = np.asarray(getattr(eager_ref, name))
        b = np.asarray(getattr(compiled_ref, name))
        np.testing.assert_allclose(b, a, rtol=1e-10, atol=1e-12)
        curve_dev = max(curve_dev, float(np.max(np.abs(b - a) / np.abs(a))))

    # -- steady-state speedup ------------------------------------------
    # Min-of-rounds per engine: scheduler/VM load spikes only ever add
    # time, so the minimum is the robust steady-state estimator (the
    # classic microbenchmark rule; medians drift under sustained load).
    eager = _SteadyTrainer(ds, compiled=False, epochs=EPOCHS)
    eager_s = min(eager() for _ in range(5))
    compiled = _SteadyTrainer(ds, compiled=True, epochs=EPOCHS)
    compiled_s = min(compiled() for _ in range(5))
    steps = EPOCHS * (DATASET // BATCH)

    stats = {
        "n": N,
        "dataset": DATASET,
        "batch_size": BATCH,
        "epochs": EPOCHS,
        "steps": steps,
        "eager_s": eager_s,
        "compiled_s": compiled_s,
        "eager_ms_per_step": eager_s / steps * 1e3,
        "compiled_ms_per_step": compiled_s / steps * 1e3,
        "speedup": eager_s / compiled_s,
        "loss_curve_max_rel_dev": curve_dev,
        "compile_counters": dict(compiled_ref.compile_counters),
        "cpus": os.cpu_count() or 1,
    }
    write_record("vae_training", stats)
    return stats


def test_vae_training(benchmark):
    stats = once(benchmark, run_vae_training)
    print()
    print(
        f"CNN-VAE train step: n={stats['n']} batch={stats['batch_size']} "
        f"({stats['cpus']} CPUs)"
    )
    print(f"  eager tape      {stats['eager_ms_per_step']:8.2f} ms/step")
    print(
        f"  graph executor  {stats['compiled_ms_per_step']:8.2f} ms/step "
        f"({stats['speedup']:.2f}x)"
    )
    print(
        f"  loss-curve max rel deviation {stats['loss_curve_max_rel_dev']:.2e} "
        f"(contract: 1e-10)"
    )
    print(f"  record -> {OUT_PATH}")
    # Equivalence is asserted inside run_vae_training at every scale;
    # the throughput gate arms once there are enough timed steps for a
    # stable measurement.
    if EPOCHS >= 4 and os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") != "0":
        assert stats["speedup"] >= SPEEDUP_TARGET, stats
