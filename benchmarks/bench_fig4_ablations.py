"""Figure 4: ablating CircuitVAE's search and training components.

Four variants on the same task (the paper uses 32-bit, omega = 0.66, the
largest initial dataset):

* full CircuitVAE (cost-weighted init + data reweighting),
* no data reweighting (uniform training weights),
* search initialized from the prior,
* search initialized from the Sklansky encoding.

Paper's finding to check: full CircuitVAE dominates; Sklansky init beats
prior init; removing reweighting hurts.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.circuits import adder_task
from repro.core import CircuitVAEOptimizer
from repro.opt import aggregate_curves, run_method
from repro.prefix import sklansky
from repro.utils.plotting import ascii_plot, format_series_csv

from common import BITWIDTHS, BUDGET, evaluation_engine, once, SEEDS, vae_config


def variant_factories(n):
    cfg = vae_config()
    return {
        "full": lambda s: CircuitVAEOptimizer(cfg),
        "no-reweight": lambda s: CircuitVAEOptimizer(
            replace(cfg, train=replace(cfg.train, reweight=False))
        ),
        "prior-init": lambda s: CircuitVAEOptimizer(
            replace(cfg, search=replace(cfg.search, init_mode="prior"))
        ),
        "sklansky-init": lambda s: CircuitVAEOptimizer(
            replace(
                cfg,
                search=replace(cfg.search, init_mode="fixed-graph"),
                fixed_init_graph=sklansky(n),
            )
        ),
    }


def run_ablations():
    # The paper ablates on 32-bit — its *smaller* experiment width; we
    # correspondingly use the smaller width of the scaled grid.
    n = min(BITWIDTHS)
    task = adder_task(n, 0.66)
    budgets = list(range(BUDGET // 8, BUDGET + 1, BUDGET // 8))
    series, rows, finals = {}, [], {}
    from repro.utils.rng import seed_sequence

    seeds = seed_sequence(0, SEEDS)
    for name, factory in variant_factories(n).items():
        records = run_method(
            factory, task, BUDGET, seeds, method_name=name,
            engine=evaluation_engine(),
        )
        agg = aggregate_curves(records, budgets)
        series[name] = (budgets, agg["median"].tolist())
        finals[name] = float(agg["median"][-1])
        for b, med in zip(budgets, agg["median"]):
            rows.append([n, name, b, float(med)])
    return series, rows, finals


def test_fig4_ablations(benchmark):
    series, rows, finals = once(benchmark, run_ablations)
    print()
    print(ascii_plot(series, title="Fig.4: ablations (median best cost)",
                     xlabel="simulations", ylabel="cost"))
    print(format_series_csv(["bitwidth", "variant", "budget", "median"], rows))
    # Reproduction checks (with slack for the reduced scale): the full
    # method is never beaten by more than noise.
    assert finals["full"] <= min(finals.values()) * 1.02, finals
