"""Figure 4: ablating CircuitVAE's search and training components.

Four variants on the same task (the paper uses 32-bit, omega = 0.66, the
largest initial dataset):

* full CircuitVAE (cost-weighted init + data reweighting),
* no data reweighting (uniform training weights),
* search initialized from the prior,
* search initialized from the Sklansky encoding.

All four are labeled variants of the one registered "CircuitVAE" method
in a single experiment spec — the Sklansky init travels as the structure
*name*, resolved to a graph at the task bitwidth by the registry.

Paper's finding to check: full CircuitVAE dominates; Sklansky init beats
prior init; removing reweighting hurts.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, MethodSpec, TaskSpec
from repro.utils.plotting import ascii_plot, format_series_csv

from common import BITWIDTHS, BUDGET, SEEDS, once, session, vae_params


def variant_specs():
    base = vae_params()
    return (
        MethodSpec("CircuitVAE", label="full", params=base),
        MethodSpec(
            "CircuitVAE", label="no-reweight",
            params=vae_params(train={**base["train"], "reweight": False}),
        ),
        MethodSpec(
            "CircuitVAE", label="prior-init",
            params=vae_params(search={**base["search"], "init_mode": "prior"}),
        ),
        MethodSpec(
            "CircuitVAE", label="sklansky-init",
            params=vae_params(
                search={**base["search"], "init_mode": "fixed-graph"},
                fixed_init_graph="sklansky",
            ),
        ),
    )


def run_ablations():
    # The paper ablates on 32-bit — its *smaller* experiment width; we
    # correspondingly use the smaller width of the scaled grid.
    n = min(BITWIDTHS)
    spec = ExperimentSpec(
        name=f"fig4-ablations-{n}",
        task=TaskSpec(circuit_type="adder", n=n, delay_weight=0.66),
        methods=variant_specs(),
        budget=BUDGET,
        num_seeds=SEEDS,
    )
    result = session().run(spec)
    budgets = result.budgets()
    series, rows, finals = {}, [], {}
    for name, agg in result.curves().items():
        series[name] = (budgets, agg["median"].tolist())
        finals[name] = float(agg["median"][-1])
        for b, med in zip(budgets, agg["median"]):
            rows.append([n, name, b, float(med)])
    return series, rows, finals


def test_fig4_ablations(benchmark):
    series, rows, finals = once(benchmark, run_ablations)
    print()
    print(ascii_plot(series, title="Fig.4: ablations (median best cost)",
                     xlabel="simulations", ylabel="cost"))
    print(format_series_csv(["bitwidth", "variant", "budget", "median"], rows))
    # Reproduction checks (with slack for the reduced scale): the full
    # method is never beaten by more than noise.
    assert finals["full"] <= min(finals.values()) * 1.02, finals
