"""Extra ablation (DESIGN.md): the beta (KL weight) of the beta-VAE.

The paper fixes beta = 0.01 everywhere.  This bench sweeps beta to show
why: tiny beta lets posteriors drift from the prior (hurting
prior-regularized search, whose pull targets the origin), huge beta
collapses the latent code (hurting reconstruction and cost shaping).
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.circuits import adder_task
from repro.core import CircuitVAEOptimizer
from repro.opt import aggregate_curves, run_method
from repro.utils.rng import seed_sequence
from repro.utils.tables import format_table

from common import BITWIDTHS, BUDGET, evaluation_engine, once, SEEDS, vae_config

BETAS = [0.0001, 0.01, 1.0]


def run_beta_sweep():
    task = adder_task(min(BITWIDTHS), 0.66)
    seeds = seed_sequence(1, SEEDS)
    finals = {}
    for beta in BETAS:
        cfg = vae_config()
        cfg = replace(cfg, train=replace(cfg.train, beta=beta))
        records = run_method(
            lambda s, c=cfg: CircuitVAEOptimizer(c), task, BUDGET, seeds,
            method_name=f"beta={beta}", engine=evaluation_engine(),
        )
        finals[beta] = float(aggregate_curves(records, [BUDGET])["median"][0])
    return finals


def test_ablation_beta(benchmark):
    finals = once(benchmark, run_beta_sweep)
    print()
    print(format_table(
        ["beta (KL weight)", "median best cost"],
        [[f"{b}", f"{v:.3f}"] for b, v in finals.items()],
    ))
    # Check: the paper's beta is no worse than the extremes by more than noise.
    assert finals[0.01] <= min(finals.values()) * 1.03, finals
