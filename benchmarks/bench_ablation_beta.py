"""Extra ablation (DESIGN.md): the beta (KL weight) of the beta-VAE.

The paper fixes beta = 0.01 everywhere.  This bench sweeps beta to show
why: tiny beta lets posteriors drift from the prior (hurting
prior-regularized search, whose pull targets the origin), huge beta
collapses the latent code (hurting reconstruction and cost shaping).
The three betas are labeled variants of one registered method in a
single experiment spec.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, MethodSpec, TaskSpec
from repro.utils.tables import format_table

from common import BITWIDTHS, BUDGET, once, SEEDS, session, vae_params

BETAS = [0.0001, 0.01, 1.0]


def run_beta_sweep():
    base = vae_params()
    spec = ExperimentSpec(
        name=f"ablation-beta-{min(BITWIDTHS)}",
        task=TaskSpec(circuit_type="adder", n=min(BITWIDTHS), delay_weight=0.66),
        methods=tuple(
            MethodSpec(
                "CircuitVAE", label=f"beta={beta}",
                params=vae_params(train={**base["train"], "beta": beta}),
            )
            for beta in BETAS
        ),
        budget=BUDGET,
        num_seeds=SEEDS,
        base_seed=1,
    )
    result = session().run(spec)
    curves = result.curves([BUDGET])
    return {beta: float(curves[f"beta={beta}"]["median"][0]) for beta in BETAS}


def test_ablation_beta(benchmark):
    finals = once(benchmark, run_beta_sweep)
    print()
    print(format_table(
        ["beta (KL weight)", "median best cost"],
        [[f"{b}", f"{v:.3f}"] for b, v in finals.items()],
    ))
    # Check: the paper's beta is no worse than the extremes by more than noise.
    assert finals[0.01] <= min(finals.values()) * 1.03, finals
