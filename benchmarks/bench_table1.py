"""Table 1: detailed comparison in the hardest, high-budget setting.

For each delay weight, reports per method: best-adder cost, area (um^2),
delay (ns) as median (IQR) over paired seeds, and the **VAE speedup** —
the budget a method needed for its best adder divided by the budget
CircuitVAE needed to match it.  Paper's claims to check: CircuitVAE has
the lowest cost row-by-row, and speedups are typically > 2x.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, TaskSpec
from repro.opt import median_iqr, vae_speedup
from repro.utils.tables import format_median_iqr, format_table

from common import BITWIDTHS, DELAY_WEIGHTS, HIGH_BUDGET, method_specs, once, SEEDS, session


def run_table():
    n = max(BITWIDTHS)  # the paper's Table 1 is the largest bitwidth
    all_rows = []
    checks = []
    for omega in DELAY_WEIGHTS:
        spec = ExperimentSpec(
            name=f"table1-adder{n}-w{omega}",
            task=TaskSpec(circuit_type="adder", n=n, delay_weight=omega),
            methods=method_specs(),
            budget=HIGH_BUDGET,
            num_seeds=SEEDS,
        )
        results = session().run(spec).records
        vae_records = results["CircuitVAE"]
        for method in ("CircuitVAE", "GA", "RL", "BO"):
            records = results[method]
            cost = median_iqr([r.best_metrics()[0] for r in records])
            area = median_iqr([r.best_metrics()[1] for r in records])
            delay = median_iqr([r.best_metrics()[2] for r in records])
            if method == "CircuitVAE":
                speedup = "-"
            else:
                speedup = format_median_iqr(*median_iqr(vae_speedup(vae_records, records)))
            all_rows.append([
                f"{omega}", method,
                format_median_iqr(*cost),
                format_median_iqr(*area, digits=1),
                format_median_iqr(*delay, digits=3),
                speedup,
            ])
        checks.append({
            method: np.median([r.best_cost() for r in records])
            for method, records in results.items()
        })
    return n, all_rows, checks


def test_table1(benchmark):
    n, rows, checks = once(benchmark, run_table)
    print()
    print(f"Table 1 (reproduced at {n}-bit, budget-limited; see EXPERIMENTS.md)")
    print(format_table(
        ["omega", "Alg.", "Cost", "Area (um2)", "Delay (ns)", "VAE speedup"], rows
    ))
    # Reproduction check: CircuitVAE's median cost is best (or ties within
    # 1.5%) in every omega row.
    for row_check in checks:
        vae = row_check["CircuitVAE"]
        assert vae <= min(v for k, v in row_check.items() if k != "CircuitVAE") * 1.015, row_check
