"""Microbench: attaching to a warm daemon vs cold-starting an engine.

The point of the shared evaluation daemon (:mod:`repro.serve`) is that
short-lived clients — a notebook cell, a quick sweep — inherit a warm
synthesis cache instead of paying cold-start synthesis again.  This
bench quantifies that and writes a ``BENCH_serve_attach.json`` record:

1. **cold-start** — a fresh in-process :class:`EngineSimulator` plus a
   fresh :class:`EvaluationEngine` (memory-only cache) evaluates the
   workload: every graph is synthesized from scratch;
2. **warm-attach** — a daemon pre-warmed with the same workload serves
   a :class:`RemoteEngineSimulator` client over the unix socket: the
   client pays connection + wire cost, the daemon answers from cache.

Bit-identity of (area, delay) between the two paths is asserted — the
speedup must never come from answering differently.  The wall-clock
ratio is recorded for the artifact but not gated (shared CI runners are
too noisy); ``REPRO_BENCH_ASSERT_SERVE=1`` arms a >= 2x gate for
controlled machines.
"""

import json
import os
import time

import numpy as np

from repro.circuits import adder_task
from repro.engine import EngineSimulator, EvaluationEngine
from repro.prefix import unique_random_graphs
from repro.serve.client import RemoteEngineSimulator, ServeClient
from repro.serve.daemon import EvalDaemon

from _record import read_record, record_path, write_record
from common import once

OUT_PATH = record_path("serve_attach")
N = 16
WORKLOAD = int(os.environ.get("REPRO_BENCH_SERVE_GRAPHS", "48"))
ROUNDS = 3


def _workload():
    return unique_random_graphs(
        N, WORKLOAD, np.random.default_rng(7),
        density_low=0.1, density_high=0.6,
    )


def _cold_start_seconds(task, graphs):
    start = time.perf_counter()
    simulator = EngineSimulator(task, engine=EvaluationEngine())
    out = simulator.query_plan(graphs)
    return time.perf_counter() - start, out


def _warm_attach_seconds(task, graphs, socket_path):
    start = time.perf_counter()
    client = ServeClient(socket_path, client_name="bench")
    simulator = RemoteEngineSimulator(task, client=client)
    out = simulator.query_plan(graphs)
    elapsed = time.perf_counter() - start
    assert simulator.remote, "bench fell back to the in-process engine"
    client.close()
    return elapsed, out


def run_serve_attach(tmp_dir=None):
    import tempfile

    task = adder_task(N, 0.66)
    graphs = _workload()
    tmp = tmp_dir or tempfile.mkdtemp(prefix="bench_serve_")
    socket_path = os.path.join(tmp, "bench.sock")

    daemon = EvalDaemon(socket_path, engine=EvaluationEngine())
    thread = daemon.run_in_thread()
    try:
        # pre-warm the daemon with the exact workload
        warmup_client = ServeClient(socket_path, client_name="warmup")
        RemoteEngineSimulator(task, client=warmup_client).query_plan(graphs)
        warmup_client.close()

        cold_s, cold_out = min(
            (_cold_start_seconds(task, graphs) for _ in range(ROUNDS)),
            key=lambda pair: pair[0],
        )
        synth_before = daemon.engine.telemetry.synth_calls
        warm_s, warm_out = min(
            (_warm_attach_seconds(task, graphs, socket_path)
             for _ in range(ROUNDS)),
            key=lambda pair: pair[0],
        )
        # warm attach means ZERO new synthesis on the daemon
        synth_delta = daemon.engine.telemetry.synth_calls - synth_before
        assert synth_delta == 0, synth_delta
    finally:
        daemon.begin_drain()
        thread.join(timeout=15)

    # the speedup must not come from answering differently
    for cold, warm in zip(cold_out, warm_out):
        assert (cold.area_um2, cold.delay_ns) == (warm.area_um2, warm.delay_ns)

    stats = {
        "graphs": WORKLOAD,
        "bitwidth": N,
        "cold_start_s": cold_s,
        "warm_attach_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "cpus": os.cpu_count() or 1,
    }
    write_record("serve_attach", stats)
    return stats


def test_serve_attach(benchmark):
    stats = once(benchmark, run_serve_attach)
    print()
    print(
        f"serve attach: {stats['graphs']} graphs @ n={stats['bitwidth']}  "
        f"cold-start {stats['cold_start_s'] * 1000:8.1f} ms   "
        f"warm-attach {stats['warm_attach_s'] * 1000:8.1f} ms   "
        f"({stats['speedup']:.1f}x)"
    )
    print(f"  record -> {OUT_PATH}")
    if os.environ.get("REPRO_BENCH_ASSERT_SERVE") == "1":
        assert stats["speedup"] >= 2.0, stats


if __name__ == "__main__":
    run_serve_attach()
    print(json.dumps(read_record("serve_attach"), indent=2))
