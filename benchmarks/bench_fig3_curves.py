"""Figure 3: cost vs simulation budget across bitwidths and delay weights.

Regenerates the paper's main comparison — CircuitVAE vs GA vs RL vs BO on
binary adders, one panel per (bitwidth, omega), median best-cost over
paired seeds at a ladder of budgets.  The paper's claim to check: the
CircuitVAE curve sits at or below every other method at (almost) every
budget, on every panel.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, TaskSpec
from repro.utils.plotting import ascii_plot, format_series_csv

from common import BITWIDTHS, BUDGET, DELAY_WEIGHTS, SEEDS, method_specs, once, session


def run_panel(n, omega):
    spec = ExperimentSpec(
        name=f"fig3-adder{n}-w{omega}",
        task=TaskSpec(circuit_type="adder", n=n, delay_weight=omega),
        methods=method_specs(),
        budget=BUDGET,
        num_seeds=SEEDS,
    )
    result = session().run(spec)
    budgets = result.budgets()
    series = {}
    rows = []
    for method, agg in result.curves().items():
        series[method] = (budgets, agg["median"].tolist())
        for b, med, lo, hi in zip(budgets, agg["median"], agg["q25"], agg["q75"]):
            rows.append([n, omega, method, b, float(med), float(lo), float(hi)])
    return series, rows, result.records


@pytest.mark.parametrize("n", BITWIDTHS)
@pytest.mark.parametrize("omega", DELAY_WEIGHTS)
def test_fig3_panel(benchmark, n, omega):
    series, rows, results = once(benchmark, lambda: run_panel(n, omega))
    print()
    print(ascii_plot(
        series,
        title=f"Fig.3 panel: {n}-bit adder, delay weight {omega} (median best cost)",
        xlabel="simulations", ylabel="cost",
    ))
    print(format_series_csv(
        ["bitwidth", "omega", "method", "budget", "median", "q25", "q75"], rows
    ))
    # Reproduction check at the full budget: CircuitVAE is the best or
    # within noise (1.5%) of the best method.
    final = {m: s[1][-1] for m, s in series.items()}
    best_other = min(v for m, v in final.items() if m != "CircuitVAE")
    assert final["CircuitVAE"] <= best_other * 1.015, final
