"""Figure 3: cost vs simulation budget across bitwidths and delay weights.

Regenerates the paper's main comparison — CircuitVAE vs GA vs RL vs BO on
binary adders, one panel per (bitwidth, omega), median best-cost over
paired seeds at a ladder of budgets.  The paper's claim to check: the
CircuitVAE curve sits at or below every other method at (almost) every
budget, on every panel.
"""

import numpy as np
import pytest

from repro.circuits import adder_task
from repro.opt import aggregate_curves, run_comparison
from repro.utils.plotting import ascii_plot, format_series_csv

from common import BITWIDTHS, BUDGET, DELAY_WEIGHTS, SEEDS, evaluation_engine, method_factories, once


def run_panel(n, omega):
    task = adder_task(n, omega)
    results = run_comparison(
        method_factories(), task, budget=BUDGET, num_seeds=SEEDS,
        engine=evaluation_engine(),
    )
    budgets = list(range(BUDGET // 8, BUDGET + 1, BUDGET // 8))
    series = {}
    rows = []
    for method, records in results.items():
        agg = aggregate_curves(records, budgets)
        series[method] = (budgets, agg["median"].tolist())
        for b, med, lo, hi in zip(budgets, agg["median"], agg["q25"], agg["q75"]):
            rows.append([n, omega, method, b, float(med), float(lo), float(hi)])
    return series, rows, results


@pytest.mark.parametrize("n", BITWIDTHS)
@pytest.mark.parametrize("omega", DELAY_WEIGHTS)
def test_fig3_panel(benchmark, n, omega):
    series, rows, results = once(benchmark, lambda: run_panel(n, omega))
    print()
    print(ascii_plot(
        series,
        title=f"Fig.3 panel: {n}-bit adder, delay weight {omega} (median best cost)",
        xlabel="simulations", ylabel="cost",
    ))
    print(format_series_csv(
        ["bitwidth", "omega", "method", "budget", "median", "q25", "q75"], rows
    ))
    # Reproduction check at the full budget: CircuitVAE is the best or
    # within noise (1.5%) of the best method.
    final = {m: s[1][-1] for m, s in series.items()}
    best_other = min(v for m, v in final.items() if m != "CircuitVAE")
    assert final["CircuitVAE"] <= best_other * 1.015, final
