"""Shared writer for the ``BENCH_<name>.json`` throughput records.

Every microbench publishes one JSON record that the CI perf-smoke job
uploads as an artifact.  This module gives them a single, atomic way to
do it:

* records land at the **repo root** regardless of the pytest invocation
  directory (CI globs ``BENCH_*.json`` from the workspace root);
* ``REPRO_BENCH_OUT`` still overrides the destination, as before;
* the write is atomic (temp file + ``os.replace`` in the destination
  directory), so a record is never observed half-written — benches run
  under ``REPRO_CACHE_DIR`` sharing may be re-invoked while a previous
  record is being consumed.
"""

import json
import os
import tempfile

__all__ = ["record_path", "write_record", "read_record"]

#: benchmarks/ lives directly under the repo root.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record_path(name: str) -> str:
    """Destination for the ``BENCH_<name>.json`` record.

    ``REPRO_BENCH_OUT`` overrides it verbatim (one bench per process, as
    CI runs them); otherwise the record is anchored at the repo root.
    """
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return override
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def write_record(name: str, stats: dict) -> str:
    """Atomically publish ``stats`` as ``BENCH_<name>.json``; returns the path."""
    path = record_path(name)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=f".BENCH_{name}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(stats, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_record(name: str) -> dict:
    """Load a previously written record (e.g. for __main__ pretty-print)."""
    with open(record_path(name)) as handle:
        return json.load(handle)
