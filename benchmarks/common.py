"""Shared configuration for the figure/table benchmarks.

Every bench regenerates one table or figure of the paper at a reduced
default scale (bitwidths, budgets and seed counts are scaled so the whole
suite runs on a laptop CPU in tens of minutes; the paper used an A100 plus
a 24-core simulation farm per run).  Set ``REPRO_SCALE=paper`` to run the
full-size grid — identical code, larger constants.

The qualitative comparisons (who wins at a budget, by what factor) are
scale-stable; EXPERIMENTS.md records measured-vs-paper numbers.

Benches describe their grids as :class:`repro.api.ExperimentSpec` values
and run them through one process-wide :class:`repro.api.Session` — one
persistent cache + worker pool for the whole bench process, so methods
and seeds share synthesis results, and (with ``REPRO_CACHE_DIR`` set) so
do *repeated invocations* of a bench, which then perform zero new
synthesis calls.  ``REPRO_ENGINE_WORKERS`` (default 1 = serial) sizes the
multiprocessing synthesis pool.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.api import MethodSpec, Session, build_config
from repro.core import CircuitVAEConfig

SCALE = os.environ.get("REPRO_SCALE", "small")

if SCALE == "paper":
    BITWIDTHS = [32, 64]
    GRAY_BITS = 26
    REAL_BITS = 31
    BUDGET = 5000
    HIGH_BUDGET = 20000
    SEEDS = 5
    VAE_SIZES = dict(latent_dim=48, base_channels=16, hidden_dim=256)
    INITIAL = 1000
else:
    BITWIDTHS = [8, 16]
    GRAY_BITS = 13
    REAL_BITS = 16
    BUDGET = 140
    HIGH_BUDGET = 180
    SEEDS = 2
    VAE_SIZES = dict(latent_dim=16, base_channels=6, hidden_dim=64)
    INITIAL = 48

DELAY_WEIGHTS = [0.33, 0.66, 0.95]

_SESSION: Optional[Session] = None


def session() -> Session:
    """The process-wide session every bench routes its runs through."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()  # REPRO_CACHE_DIR / REPRO_ENGINE_WORKERS
    return _SESSION


def vae_params(**overrides) -> Dict:
    """Benchmark-scale CircuitVAE parameters as a JSON-able params dict.

    Small acquisition batches (8 trajectories x 2 captures) buy more
    retraining rounds per budget — the right trade at bench budgets.
    Nested ``train``/``search`` overrides replace the whole block, so
    merge with the base dicts when varying a single knob (see the Fig. 4
    ablation bench).
    """
    base = dict(
        initial_samples=INITIAL,
        first_round_epochs=25,
        train=dict(epochs=10, batch_size=32),
        search=dict(num_parallel=8, num_steps=40, capture_every=20, step_size=0.15),
        **VAE_SIZES,
    )
    base.update(overrides)
    return base


def vae_config(**overrides) -> CircuitVAEConfig:
    """The benchmark-scale config, for benches driving the optimizer directly."""
    return build_config("CircuitVAE", vae_params(**overrides))


def method_specs() -> Tuple[MethodSpec, ...]:
    """The four methods of Figs. 3/7 and Table 1 (paired per seed)."""
    return (
        MethodSpec("CircuitVAE", params=vae_params()),
        MethodSpec("GA", params=dict(population_size=24)),
        MethodSpec("RL", params=dict(episode_length=16)),
        MethodSpec(
            "BO",
            params=dict(
                vae=vae_params(), batch_per_round=12, candidate_pool=256,
                gp_max_points=128,
            ),
        ),
    )


def once(benchmark, fn):
    """Run a whole experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
