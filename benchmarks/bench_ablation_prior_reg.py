"""Extra ablation (DESIGN.md): prior regularization vs box constraint vs none.

The paper argues (Sec. 4.2) that a hard box around the origin — the
constraint Tripp et al. use — is worse than the soft prior pull because a
high-dimensional box has exponentially many uninhabited corners, and that
*no* constraint overfits the surrogate.  This bench runs the full
optimizer under the three regimes and compares achieved cost.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.circuits import adder_task
from repro.core import CircuitVAEOptimizer
from repro.opt import aggregate_curves, run_method
from repro.utils.rng import seed_sequence
from repro.utils.tables import format_table

from common import BITWIDTHS, BUDGET, evaluation_engine, once, SEEDS, vae_config


def regime_factories():
    cfg = vae_config()
    return {
        "prior-reg (paper)": lambda s: CircuitVAEOptimizer(cfg),
        "box-constraint": lambda s: CircuitVAEOptimizer(
            replace(cfg, search=replace(cfg.search, box_constraint=3.0))
        ),
        "unregularized": lambda s: CircuitVAEOptimizer(
            replace(cfg, search=replace(
                cfg.search, gamma_low=1e-6, gamma_high=2e-6, box_constraint=None
            ))
        ),
    }


def run_regimes():
    task = adder_task(min(BITWIDTHS), 0.66)
    seeds = seed_sequence(0, SEEDS)
    finals = {}
    for name, factory in regime_factories().items():
        records = run_method(
            factory, task, BUDGET, seeds, method_name=name,
            engine=evaluation_engine(),
        )
        agg = aggregate_curves(records, [BUDGET])
        finals[name] = float(agg["median"][0])
    return finals


def test_ablation_prior_regularization(benchmark):
    finals = once(benchmark, run_regimes)
    print()
    print(format_table(
        ["search regularization", "median best cost"],
        [[k, f"{v:.3f}"] for k, v in finals.items()],
    ))
    # Check: the paper's soft prior regularization is never beaten by more
    # than noise by either alternative.
    assert finals["prior-reg (paper)"] <= min(finals.values()) * 1.02, finals
