"""Extra ablation (DESIGN.md): prior regularization vs box constraint vs none.

The paper argues (Sec. 4.2) that a hard box around the origin — the
constraint Tripp et al. use — is worse than the soft prior pull because a
high-dimensional box has exponentially many uninhabited corners, and that
*no* constraint overfits the surrogate.  This bench runs the full
optimizer under the three regimes (labeled search-config variants in one
experiment spec) and compares achieved cost.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, MethodSpec, TaskSpec
from repro.utils.tables import format_table

from common import BITWIDTHS, BUDGET, once, SEEDS, session, vae_params


def regime_specs():
    base = vae_params()
    search = base["search"]
    return (
        MethodSpec("CircuitVAE", label="prior-reg (paper)", params=base),
        MethodSpec(
            "CircuitVAE", label="box-constraint",
            params=vae_params(search={**search, "box_constraint": 3.0}),
        ),
        MethodSpec(
            "CircuitVAE", label="unregularized",
            params=vae_params(search={
                **search, "gamma_low": 1e-6, "gamma_high": 2e-6, "box_constraint": None,
            }),
        ),
    )


def run_regimes():
    spec = ExperimentSpec(
        name=f"ablation-prior-reg-{min(BITWIDTHS)}",
        task=TaskSpec(circuit_type="adder", n=min(BITWIDTHS), delay_weight=0.66),
        methods=regime_specs(),
        budget=BUDGET,
        num_seeds=SEEDS,
    )
    result = session().run(spec)
    curves = result.curves([BUDGET])
    return {name: float(agg["median"][0]) for name, agg in curves.items()}


def test_ablation_prior_regularization(benchmark):
    finals = once(benchmark, run_regimes)
    print()
    print(format_table(
        ["search regularization", "median best cost"],
        [[k, f"{v:.3f}"] for k, v in finals.items()],
    ))
    # Check: the paper's soft prior regularization is never beaten by more
    # than noise by either alternative.
    assert finals["prior-reg (paper)"] <= min(finals.values()) * 1.02, finals
