"""Synthesis-flow microbenchmarks and the classical-structure table.

Times the black-box oracle itself (mapping + placement + buffering +
sizing + STA) on classical structures — the cost the paper's "simulation
budget" counts — and prints the area/delay/cost landscape those
structures span, which is the backdrop for every optimization figure.
"""

import pytest

from repro.prefix import STRUCTURES, make_structure
from repro.synth import cost_from_metrics, nangate45, scaled_library, synthesize
from repro.utils.tables import format_table

from common import BITWIDTHS


@pytest.mark.parametrize("name", sorted(STRUCTURES))
def test_synthesize_throughput(benchmark, name):
    """Time one full physical synthesis of each classical structure."""
    lib = nangate45()
    graph = make_structure(name, max(BITWIDTHS))
    result = benchmark(lambda: synthesize(graph, lib))
    assert result.delay_ns > 0


def test_classical_landscape_table(benchmark):
    """The human-baseline table: area/delay/cost of every structure."""
    n = max(BITWIDTHS)

    def build():
        lib = nangate45()
        rows = []
        for name in sorted(STRUCTURES):
            r = synthesize(make_structure(name, n), lib)
            rows.append([
                name, f"{r.area_um2:.1f}", f"{r.delay_ns:.3f}",
                f"{cost_from_metrics(r.area_um2, r.delay_ns, 0.33):.3f}",
                f"{cost_from_metrics(r.area_um2, r.delay_ns, 0.66):.3f}",
                f"{cost_from_metrics(r.area_um2, r.delay_ns, 0.95):.3f}",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(f"classical structures at {n}-bit (Nangate45 flow)")
    print(format_table(
        ["structure", "area um2", "delay ns", "cost w=.33", "cost w=.66", "cost w=.95"],
        rows,
    ))


def test_scaled_8nm_landscape(benchmark):
    """Same table on the 8nm stand-in library (Fig. 6's technology)."""
    n = max(BITWIDTHS)

    def build():
        lib = scaled_library("8nm")
        return [
            [name, f"{r.area_um2:.2f}", f"{r.delay_ns:.4f}"]
            for name in sorted(STRUCTURES)
            for r in [synthesize(make_structure(name, n), lib)]
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(f"classical structures at {n}-bit (scaled 8nm flow)")
    print(format_table(["structure", "area um2", "delay ns"], rows))
