"""Microbench: delta-aware incremental synthesis vs the batched flow.

Measures the PR-8 incremental pipeline (:mod:`repro.synth.incremental`,
surfaced as ``CircuitTask.evaluate_population``) against the
non-incremental vectorized flow (``CircuitTask.evaluate_many``) on the
workload it was built for: an optimizer population where most designs
are small mutations of a few parents, so their mapped netlists share
almost all of their logic cones.

The population is 3 classic parents (Sklansky, Brent-Kung, Kogge-Stone)
plus legalized 1-2 bit-flip mutants of them — ~90% of every mutant's
cone multiset is shared with its base, which is what lets the delta
planner rebuild only the dirty region and re-time only the dirty
frontier.

Always asserted, at every scale:

* **bit-identity** on every ``PhysicalResult`` field between the two
  flows (the incremental pipeline's core contract);
* the delta planner actually engaged: ``cone_hits > 0`` and every graph
  is accounted as either incremental or a full fallback.

The >= 2x speedup gate arms at population 64+ on a multi-core host
(``REPRO_BENCH_ASSERT_SPEEDUP=1`` forces it, ``=0`` disables it; CI's
perf-smoke job runs a tiny population where only the contracts above
are asserted), and writes a ``BENCH_incremental_eval.json`` record the
CI perf-smoke job uploads as an artifact.

Environment knobs:

* ``REPRO_BENCH_POPULATION`` — population size (default 64).
* ``REPRO_BENCH_BITS`` — bitwidth (default 32).
* ``REPRO_BENCH_ASSERT_SPEEDUP`` — ``1`` forces the gate, ``0``
  disables it; unset = auto (population 64+ and >= 2 CPUs).
"""

import os
import time

import numpy as np

from repro.circuits import adder_task
from repro.prefix import structures
from repro.prefix.legalize import legalize
from repro.synth.incremental import IncrementalStats

from _record import record_path, write_record
from common import once

POPULATION = int(os.environ.get("REPRO_BENCH_POPULATION", "64"))
BITS = int(os.environ.get("REPRO_BENCH_BITS", "32"))
OUT_PATH = record_path("incremental_eval")
ROUNDS = 5
SPEEDUP_TARGET = 2.0
SPEEDUP_MIN_POPULATION = 64


def mutant_population(n, total, seed=42):
    """3 classic parents + legalized 1-2 bit-flip mutants (deduped).

    The shape of a GA/BO round: every child differs from some parent by
    one or two prefix-node flips, then legalization — ~90% of its cones
    are shared with the parent's netlist.
    """
    bases = [structures.sklansky(n), structures.brent_kung(n), structures.kogge_stone(n)]
    rng = np.random.default_rng(seed)
    graphs = list(bases[: min(3, total)])
    seen = {g.key() for g in graphs}
    while len(graphs) < total:
        base = graphs[int(rng.integers(0, len(bases)))]
        grid = base.grid.copy()
        for _ in range(int(rng.integers(1, 3))):
            i = int(rng.integers(2, n))
            j = int(rng.integers(1, i))
            grid[i, j] ^= True
        graph = legalize(grid)
        if graph.key() not in seen:
            seen.add(graph.key())
            graphs.append(graph)
    return graphs


def _assert_identical(batched, incremental):
    assert len(batched) == len(incremental)
    for i, (a, b) in enumerate(zip(batched, incremental)):
        assert a.area_um2 == b.area_um2, (i, a.area_um2, b.area_um2)
        assert a.delay_ns == b.delay_ns, (i, a.delay_ns, b.delay_ns)
        assert a.num_gates == b.num_gates, i
        assert a.num_buffers == b.num_buffers, i
        assert a.wirelength_um == b.wirelength_um, i
        assert a.cell_counts == b.cell_counts, i
        assert a.critical_output == b.critical_output, i


def run_incremental_eval():
    task = adder_task(BITS, 0.66)
    graphs = mutant_population(BITS, POPULATION)

    # Warm both paths (library tables, cone-key memos), then time
    # best-of-rounds: steady-state throughput is what a run's many
    # population rounds actually see.
    task.evaluate_many(graphs)
    task.evaluate_population(graphs)

    batched_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        batched = task.evaluate_many(graphs)
        batched_s = min(batched_s, time.perf_counter() - start)

    stats = IncrementalStats()
    incremental_s = float("inf")
    for _ in range(ROUNDS):
        round_stats = IncrementalStats()
        start = time.perf_counter()
        incremental = task.evaluate_population(graphs, stats=round_stats)
        incremental_s = min(incremental_s, time.perf_counter() - start)
        stats = round_stats  # all rounds are identical; keep the last

    _assert_identical(batched, incremental)
    # The planner must actually engage on this workload: shared cones
    # found, and every graph accounted for one way or the other.
    assert stats.cone_hits > 0, stats
    assert stats.incremental_evals + stats.full_fallbacks == POPULATION, stats

    record = {
        "n": BITS,
        "population": POPULATION,
        "batched_s": batched_s,
        "incremental_s": incremental_s,
        "speedup": batched_s / incremental_s,
        "batched_graphs_per_s": POPULATION / batched_s,
        "incremental_graphs_per_s": POPULATION / incremental_s,
        "incremental_evals": stats.incremental_evals,
        "cone_hits": stats.cone_hits,
        "full_fallbacks": stats.full_fallbacks,
        "bit_identical": True,
        "cpus": os.cpu_count() or 1,
    }
    write_record("incremental_eval", record)
    return record


def test_incremental_eval(benchmark):
    stats = once(benchmark, run_incremental_eval)
    print()
    print(
        f"incremental evaluation: n={stats['n']} "
        f"population={stats['population']} ({stats['cpus']} CPUs)"
    )
    print(
        f"  batched flow  {stats['batched_s'] * 1000:8.1f} ms "
        f"({stats['batched_graphs_per_s']:.0f} graphs/s)"
    )
    print(
        f"  incremental   {stats['incremental_s'] * 1000:8.1f} ms "
        f"({stats['incremental_graphs_per_s']:.0f} graphs/s, "
        f"{stats['speedup']:.2f}x)"
    )
    print(
        f"  delta planner: {stats['incremental_evals']} incremental, "
        f"{stats['cone_hits']} cone hits, "
        f"{stats['full_fallbacks']} full fallbacks"
    )
    print(f"  record -> {OUT_PATH}")
    # Bit-identity and planner engagement always hold (asserted inside
    # run_incremental_eval); the throughput gate applies at population
    # scale on a host with spare cores (shared CI runners below that are
    # too noisy for a wall-clock threshold).
    gate = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP")
    armed = gate == "1" or (
        gate != "0"
        and POPULATION >= SPEEDUP_MIN_POPULATION
        and stats["cpus"] >= 2
    )
    if armed:
        assert stats["speedup"] >= SPEEDUP_TARGET, stats
