"""Microbench: vectorized population evaluation vs the scalar loop.

Measures the PR-3 fast path (:mod:`repro.synth.batched`, surfaced as
``CircuitTask.evaluate_many``) against the reference per-graph
``task.synthesize`` loop on one population of unique legalized designs,
asserts the two are **bit-identical** on every ``PhysicalResult`` field,
and writes a ``BENCH_batched_eval.json`` throughput record (consumed by
the CI perf-smoke job, which uploads it as an artifact).

Environment knobs:

* ``REPRO_BENCH_POPULATION`` — population size (default 64).  The >= 3x
  speedup gate only applies at populations of 64+; CI's perf-smoke job
  runs a tiny population where only bit-identity is asserted.
* ``REPRO_BENCH_ASSERT_SPEEDUP=0`` — disable the speedup gate (the
  record is still written).
"""

import json
import os
import time

import numpy as np

from repro.circuits import adder_task
from repro.engine.pool import vectorized_enabled
from repro.prefix import unique_random_graphs

from _record import record_path, write_record
from common import BITWIDTHS, once

POPULATION = int(os.environ.get("REPRO_BENCH_POPULATION", "64"))
OUT_PATH = record_path("batched_eval")
ROUNDS = 3
SPEEDUP_TARGET = 3.0
SPEEDUP_MIN_POPULATION = 64


def _assert_identical(scalar, batched):
    assert len(scalar) == len(batched)
    for i, (a, b) in enumerate(zip(scalar, batched)):
        assert a.area_um2 == b.area_um2, (i, a.area_um2, b.area_um2)
        assert a.delay_ns == b.delay_ns, (i, a.delay_ns, b.delay_ns)
        assert a.num_gates == b.num_gates, i
        assert a.num_buffers == b.num_buffers, i
        assert a.wirelength_um == b.wirelength_um, i
        assert a.cell_counts == b.cell_counts, i
        assert a.critical_output == b.critical_output, i


def run_batched_eval():
    # Benching the fast path with its kill switch thrown would silently
    # time the scalar loop against itself.
    assert vectorized_enabled(), (
        "REPRO_VECTORIZED_EVAL=0 — unset the kill switch to bench the "
        "vectorized path"
    )
    n = max(BITWIDTHS)
    task = adder_task(n, 0.66)
    rng = np.random.default_rng(7)
    graphs = unique_random_graphs(
        n, POPULATION, rng, density_low=0.15, density_high=0.65
    )

    # Warm both paths (imports, library tables, allocator pools), then
    # time best-of-rounds: steady-state throughput is the quantity the
    # engine actually delivers over a run's many generations.
    task.synthesize(graphs[0])
    task.evaluate_many(graphs)

    scalar_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        scalar = [task.synthesize(graph) for graph in graphs]
        scalar_s = min(scalar_s, time.perf_counter() - start)

    batched_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        batched = task.evaluate_many(graphs)
        batched_s = min(batched_s, time.perf_counter() - start)

    _assert_identical(scalar, batched)

    stats = {
        "n": n,
        "population": POPULATION,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
        "scalar_graphs_per_s": POPULATION / scalar_s,
        "batched_graphs_per_s": POPULATION / batched_s,
        "bit_identical": True,
        "cpus": os.cpu_count() or 1,
    }
    write_record("batched_eval", stats)
    return stats


def test_batched_eval(benchmark):
    stats = once(benchmark, run_batched_eval)
    print()
    print(
        f"batched evaluation: n={stats['n']} population={stats['population']} "
        f"({stats['cpus']} CPUs)"
    )
    print(
        f"  scalar loop   {stats['scalar_s'] * 1000:8.1f} ms "
        f"({stats['scalar_graphs_per_s']:.0f} graphs/s)"
    )
    print(
        f"  vectorized    {stats['batched_s'] * 1000:8.1f} ms "
        f"({stats['batched_graphs_per_s']:.0f} graphs/s, {stats['speedup']:.2f}x)"
    )
    print(f"  record -> {OUT_PATH}")
    # Bit-identity always holds (asserted inside run_batched_eval); the
    # throughput gate applies at population scale, where packing
    # overhead is amortized.
    if (
        POPULATION >= SPEEDUP_MIN_POPULATION
        and os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") != "0"
    ):
        assert stats["speedup"] >= SPEEDUP_TARGET, stats
