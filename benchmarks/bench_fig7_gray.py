"""Figure 7: gray-to-binary converter, cost vs simulation budget.

Same four-method comparison as Fig. 3 but on the XOR-prefix task of
Sec. 5.5 (the paper: 26-bit, omega = 0.6, Nangate45).  The claim to
check: CircuitVAE outperforms all baselines on this task too — the
framework is circuit-type agnostic because only the cell mapping changes,
which at the spec level is a one-word edit: ``circuit_type="gray"``.
"""

import pytest

from repro.api import ExperimentSpec, TaskSpec
from repro.utils.plotting import ascii_plot, format_series_csv

from common import BUDGET, GRAY_BITS, SEEDS, method_specs, once, session


def run_gray():
    spec = ExperimentSpec(
        name=f"fig7-gray{GRAY_BITS}",
        task=TaskSpec(circuit_type="gray", n=GRAY_BITS, delay_weight=0.6),
        methods=method_specs(),
        budget=BUDGET,
        num_seeds=SEEDS,
    )
    result = session().run(spec)
    budgets = result.budgets()
    series, rows = {}, []
    for method, agg in result.curves().items():
        series[method] = (budgets, agg["median"].tolist())
        for b, med, lo, hi in zip(budgets, agg["median"], agg["q25"], agg["q75"]):
            rows.append([GRAY_BITS, method, b, float(med), float(lo), float(hi)])
    return series, rows


def test_fig7_gray(benchmark):
    series, rows = once(benchmark, run_gray)
    print()
    print(ascii_plot(
        series,
        title=f"Fig.7: {GRAY_BITS}-bit gray-to-binary, omega=0.6 (median best cost)",
        xlabel="simulations", ylabel="cost",
    ))
    print(format_series_csv(["bits", "method", "budget", "median", "q25", "q75"], rows))
    final = {m: s[1][-1] for m, s in series.items()}
    best_other = min(v for m, v in final.items() if m != "CircuitVAE")
    assert final["CircuitVAE"] <= best_other * 1.015, final
