"""Figure 8: best designs for the gray-to-binary converter vs the adder.

Runs CircuitVAE on both tasks at similar delay weights and renders the
winning prefix graphs side by side.  Paper's observation to check: the
two best designs are structurally different (the converter has no
carry-merge cost structure, so its best graph differs substantially from
the adder's), demonstrating task adaptation rather than a single learned
prior.
"""

import numpy as np
import pytest

from repro.circuits import adder_task, gray_to_binary_task
from repro.core import CircuitVAEOptimizer
from repro.opt import CircuitSimulator
from repro.prefix import hamming_distance, structure_summary
from repro.utils.plotting import render_prefix_graph
from repro.utils.tables import format_table

from common import BUDGET, GRAY_BITS, once, vae_config


def run_both():
    n = GRAY_BITS
    best = {}
    for label, task in [
        ("adder", adder_task(n, 0.66)),
        ("gray", gray_to_binary_task(n=n, delay_weight=0.6)),
    ]:
        sim = CircuitSimulator(task, budget=BUDGET)
        optimizer = CircuitVAEOptimizer(vae_config())
        best[label] = optimizer.run(sim, np.random.default_rng(0))
    return best


def test_fig8_best_designs(benchmark):
    best = once(benchmark, run_both)
    print()
    for label, evaluation in best.items():
        print(render_prefix_graph(evaluation.graph, label=f"best {label} design"))
        print()
    rows = []
    for label, evaluation in best.items():
        s = structure_summary(evaluation.graph)
        rows.append([
            label, f"{evaluation.cost:.3f}", s["nodes"], s["depth"],
            s["max_fanout"], f"{s['mean_fanout']:.2f}",
        ])
    print(format_table(["task", "cost", "nodes", "depth", "max fanout", "mean fanout"], rows))
    distance = hamming_distance(best["adder"].graph, best["gray"].graph)
    print(f"grid hamming distance between the two best designs: {distance}")
    # Reproduction check: the designs differ structurally.
    assert distance > 0
