from setuptools import find_packages, setup

with open("README.md", encoding="utf-8") as handle:
    long_description = handle.read()

setup(
    name="circuitvae-repro",
    version="1.0.0",
    description=(
        "CircuitVAE (DAC 2024) reproduction: latent circuit optimization "
        "with a parallel, persistent, batched evaluation engine"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    entry_points={"console_scripts": ["repro=repro.api.cli:main"]},
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
        "License :: OSI Approved :: MIT License",
    ],
)
