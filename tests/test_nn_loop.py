"""Recorded training loops (repro.nn.loop): bit-identity, fallbacks,
telemetry, and the compiled-step weakref cache."""

import gc
import weakref

import numpy as np
import pytest

from repro import nn
from repro.core.dataset import CircuitDataset
from repro.core.training import TrainConfig, _compiled_step_for, train_model
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.nn.loop import CompiledTrainLoop, use_compiled_loop
from repro.prefix import random_graph

CURVES = ("total", "reconstruction", "kl", "cost")


def small_dataset(seed=0, size=24, n=8):
    rng = np.random.default_rng(seed)
    ds = CircuitDataset()
    while len(ds) < size:
        g = random_graph(n, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    return ds


def small_model(seed=1):
    return CircuitVAEModel(
        VAEConfig(n=8, latent_dim=6, base_channels=4, hidden_dim=32),
        np.random.default_rng(seed),
    )


def fit(monkeypatch, loop, epochs=4, compiled=True):
    """One deterministic training round under the given engine knobs."""
    monkeypatch.setenv("REPRO_COMPILED_TRAIN", "1" if compiled else "0")
    monkeypatch.setenv("REPRO_COMPILED_LOOP", "1" if loop else "0")
    ds = small_dataset()
    model = small_model()
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(5)
    stats = train_model(
        model, ds, rng, TrainConfig(epochs=epochs, batch_size=8),
        optimizer=optimizer,
    )
    return model, optimizer, rng, stats


class TestRecordedLoop:
    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_LOOP", raising=False)
        assert use_compiled_loop()
        monkeypatch.setenv("REPRO_COMPILED_LOOP", "0")
        assert not use_compiled_loop()

    def test_loop_bit_identical_to_per_step(self, monkeypatch):
        """The contract: same losses, parameters and rng stream position
        as replaying the compiled step once per step."""
        m_off, _, rng_off, s_off = fit(monkeypatch, loop=False)
        m_on, _, rng_on, s_on = fit(monkeypatch, loop=True)
        for name in CURVES:
            np.testing.assert_array_equal(
                getattr(s_on, name), getattr(s_off, name)
            )
        on_state, off_state = m_on.state_dict(), m_off.state_dict()
        for name, value in off_state.items():
            np.testing.assert_array_equal(on_state[name], value)
        assert rng_on.bit_generator.state == rng_off.bit_generator.state

    def test_loop_engages_and_labels_timings(self, monkeypatch):
        """Every step rides the loop: loop_seconds carries the segments,
        the per-step/eager histograms stay empty."""
        _, _, _, stats = fit(monkeypatch, loop=True)
        assert stats.compiled
        assert len(stats.loop_seconds) == 1  # no checkpoints: one segment
        assert stats.replay_seconds == []
        assert stats.eager_seconds == []

    def test_kill_switch_restores_per_step_path(self, monkeypatch):
        _, _, _, stats = fit(monkeypatch, loop=False)
        assert stats.compiled
        assert stats.loop_seconds == []
        assert len(stats.replay_seconds) == 4 * 3  # epochs * batches

    def test_eager_fallback_labels_its_own_timings(self, monkeypatch):
        _, _, _, stats = fit(monkeypatch, loop=True, compiled=False)
        assert not stats.compiled
        assert stats.loop_seconds == []
        assert stats.replay_seconds == []
        assert len(stats.eager_seconds) == 4 * 3

    def test_segments_replayed_counter(self, monkeypatch):
        model, optimizer, _, stats = fit(monkeypatch, loop=True)
        step = _compiled_step_for(
            model, optimizer, TrainConfig(epochs=4, batch_size=8)
        )
        loop = step._train_loop
        assert isinstance(loop, CompiledTrainLoop)
        assert loop.segments_replayed == len(stats.loop_seconds) == 1

    def test_begin_failure_falls_back_per_step(self, monkeypatch):
        """A loop that cannot prove itself defers to per-step replay
        wholesale — results identical to the kill-switch path."""
        _, _, rng_ref, s_ref = fit(monkeypatch, loop=False)

        def broken_begin(self, *args, **kwargs):
            raise nn.CompileUnsupported("forced by test")

        monkeypatch.setattr(CompiledTrainLoop, "begin", broken_begin)
        _, _, rng, stats = fit(monkeypatch, loop=True)
        assert stats.compiled
        assert stats.loop_seconds == []
        assert len(stats.replay_seconds) == 4 * 3
        for name in CURVES:
            np.testing.assert_array_equal(
                getattr(stats, name), getattr(s_ref, name)
            )
        assert rng.bit_generator.state == rng_ref.bit_generator.state

    def test_predrawn_indices_match_rng_choice(self):
        """The loop's hoisted-CDF searchsorted replays rng.choice
        draw-for-draw, including the generator's stream position."""
        weights = np.random.default_rng(0).random(13)
        weights /= weights.sum()
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        mine, reference = np.random.default_rng(7), np.random.default_rng(7)
        for _ in range(50):
            drawn = cdf.searchsorted(mine.random(8), side="right")
            expected = reference.choice(13, size=8, replace=True, p=weights)
            np.testing.assert_array_equal(drawn, expected)
        assert mine.bit_generator.state == reference.bit_generator.state


class TestCompiledStepCache:
    CFG = TrainConfig(epochs=2, batch_size=8)

    def test_cache_hit_same_model_and_config(self):
        model = small_model()
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        step = _compiled_step_for(model, optimizer, self.CFG)
        assert _compiled_step_for(model, optimizer, self.CFG) is step

    def test_distinct_models_get_distinct_steps(self):
        model_a, model_b = small_model(1), small_model(2)
        opt_a = nn.Adam(model_a.parameters(), lr=1e-3)
        opt_b = nn.Adam(model_b.parameters(), lr=1e-3)
        assert _compiled_step_for(model_a, opt_a, self.CFG) is not (
            _compiled_step_for(model_b, opt_b, self.CFG)
        )

    def test_entry_dies_with_model(self, monkeypatch):
        """Regression: the cached step must not strongly reference the
        model (a WeakKeyDictionary entry whose value holds its key is
        immortal), so dropping the model drops the whole entry — even
        after a full recorded-loop training round."""
        monkeypatch.setenv("REPRO_COMPILED_TRAIN", "1")
        monkeypatch.setenv("REPRO_COMPILED_LOOP", "1")
        ds = small_dataset()
        model = small_model()
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        stats = train_model(
            model, ds, np.random.default_rng(5), self.CFG, optimizer=optimizer
        )
        assert stats.compiled
        cache = optimizer._compiled_train_steps
        assert len(cache) == 1
        model_ref = weakref.ref(model)
        del model
        gc.collect()
        assert model_ref() is None
        assert len(cache) == 0

    def test_dead_model_trace_raises_compile_unsupported(self):
        model = small_model()
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        step = _compiled_step_for(model, optimizer, self.CFG)
        del model
        gc.collect()
        with pytest.raises(nn.CompileUnsupported):
            step.step_fn(
                nn.Tensor(np.zeros((2, 1, 12, 12))),
                nn.Tensor(np.zeros((2, 8, 8))),
                nn.Tensor(np.zeros((2, 6))),
                nn.Tensor(np.zeros(2)),
            )
