"""Shared test utilities (imported as a plain module, no package needed).

pytest's rootdir-based collection puts this directory on ``sys.path``, so
test modules import from here with ``from helpers import ...`` — that is
what lets ``pytest -x -q`` collect every module without ``__init__.py``
files or relative imports.
"""

import numpy as np


def unique_random_graphs(n, count, seed=0, base_density=0.1):
    """``count`` random legal prefix graphs with pairwise-distinct keys."""
    from repro.prefix import unique_random_graphs as _unique

    return _unique(
        n,
        count,
        np.random.default_rng(seed),
        density_low=base_density,
        density_high=base_density + 0.5,
    )


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f() w.r.t. array x (in place)."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        grad[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def gradcheck(fn, *tensors, eps=1e-6, atol=1e-6, rtol=1e-4, compiled=False):
    """Finite-difference check of ``fn(*tensors) -> scalar Tensor``.

    Backpropagates analytically through every given tensor (all must
    have ``requires_grad=True``) and compares each gradient against a
    central-difference estimate.  With ``compiled=True`` the gradients
    come from the traced graph executor (:mod:`repro.nn.compile`)
    instead of the eager tape, so one call covers either engine.
    """
    from repro import nn

    assert all(t.requires_grad for t in tensors), "gradcheck needs grad-enabled tensors"
    if compiled:
        step = nn.compile_train_step(lambda: {"loss": fn(*tensors)}, list(tensors))
        step()
    else:
        for t in tensors:
            t.zero_grad()
        out = fn(*tensors)
        assert out.size == 1, "gradcheck needs a scalar output"
        out.backward()

    def value():
        return float(fn(*[type(t)(t.data) for t in tensors]).data)

    for t in tensors:
        num = numerical_grad(value, t.data, eps=eps)
        assert t.grad is not None, "no gradient reached a checked tensor"
        np.testing.assert_allclose(t.grad, num, atol=atol, rtol=rtol)
    return True
