"""Shared test utilities (imported as a plain module, no package needed).

pytest's rootdir-based collection puts this directory on ``sys.path``, so
test modules import from here with ``from helpers import ...`` — that is
what lets ``pytest -x -q`` collect every module without ``__init__.py``
files or relative imports.
"""

import numpy as np


def unique_random_graphs(n, count, seed=0, base_density=0.1):
    """``count`` random legal prefix graphs with pairwise-distinct keys."""
    from repro.prefix import unique_random_graphs as _unique

    return _unique(
        n,
        count,
        np.random.default_rng(seed),
        density_low=base_density,
        density_high=base_density + 0.5,
    )


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f() w.r.t. array x (in place)."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        grad[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad
