"""Gradient coverage for repro.nn.functional via the gradcheck helper.

Every composite kernel is checked against central differences in BOTH
execution engines: the eager tape (the numerical reference) and the
traced graph executor (repro.nn.compile), so the two stay equivalent
op-by-op, not just end-to-end.
"""

import numpy as np
import pytest

from helpers import gradcheck

from repro import nn
from repro.nn import functional as F

MODES = [False, True]  # eager, compiled


def t(shape, seed=0, scale=0.8, shift=0.3):
    rng = np.random.default_rng(seed)
    return nn.Tensor(rng.standard_normal(shape) * scale + shift, requires_grad=True)


@pytest.mark.parametrize("compiled", MODES)
class TestActivations:
    def test_softmax(self, compiled):
        x = t((4, 5))
        gradcheck(lambda a: (F.softmax(a) * F.softmax(a)).sum(), x, compiled=compiled)

    def test_log_softmax(self, compiled):
        x = t((3, 6), seed=1)
        gradcheck(lambda a: (F.log_softmax(a) ** 2).sum(), x, compiled=compiled)

    def test_relu_sigmoid_tanh(self, compiled):
        x = t((7,), seed=2)
        gradcheck(
            lambda a: (F.relu(a) + F.sigmoid(a) * F.tanh(a)).sum(), x, compiled=compiled
        )

    def test_dropout_training_mask(self, compiled):
        x = t((6, 6), seed=3)
        # A fixed rng seed fixes the mask, making dropout differentiable
        # deterministically.
        gradcheck(
            lambda a: F.dropout(a, 0.4, np.random.default_rng(0), training=True).sum(),
            x,
            compiled=compiled,
        )

    def test_dropout_eval_is_identity(self, compiled):
        x = t((5,), seed=4)
        gradcheck(
            lambda a: F.dropout(a, 0.9, np.random.default_rng(0), training=False).sum(),
            x,
            compiled=compiled,
        )


@pytest.mark.parametrize("compiled", MODES)
class TestLossKernels:
    def test_bce_with_logits(self, compiled):
        logits = t((4, 6), seed=5, scale=2.0, shift=0.0)
        targets = nn.Tensor((np.random.default_rng(6).random((4, 6)) > 0.5).astype(float))
        gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, targets, reduction="sum"),
            logits,
            compiled=compiled,
        )

    def test_bce_mean_and_none_reductions(self, compiled):
        logits = t((3, 4), seed=7, scale=1.5, shift=0.0)
        targets = nn.Tensor(np.random.default_rng(8).random((3, 4)))
        gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, targets),
            logits,
            compiled=compiled,
        )
        gradcheck(
            lambda a: (
                F.binary_cross_entropy_with_logits(a, targets, reduction="none") ** 2
            ).sum(),
            logits,
            compiled=compiled,
        )

    def test_mse(self, compiled):
        pred = t((5, 3), seed=9)
        target = nn.Tensor(np.random.default_rng(10).standard_normal((5, 3)))
        gradcheck(lambda a: F.mse_loss(a, target, reduction="sum"), pred, compiled=compiled)

    def test_gaussian_kl_both_inputs(self, compiled):
        mu = t((4, 6), seed=11)
        logvar = t((4, 6), seed=12, scale=0.5, shift=-0.2)
        gradcheck(
            lambda m, lv: F.gaussian_kl(m, lv, reduction="sum"),
            mu,
            logvar,
            compiled=compiled,
        )


@pytest.mark.parametrize("compiled", MODES)
class TestLinearAndConv:
    def test_linear_with_bias(self, compiled):
        x = t((5, 4), seed=13)
        w = t((3, 4), seed=14)
        b = t((3,), seed=15)
        gradcheck(
            lambda a, ww, bb: (F.linear(a, ww, bb) ** 2).sum(), x, w, b,
            compiled=compiled,
        )

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv2d(self, compiled, stride, padding):
        x = t((2, 3, 6, 6), seed=16)
        w = t((4, 3, 3, 3), seed=17, scale=0.4)
        b = t((4,), seed=18)
        gradcheck(
            lambda a, ww, bb: (
                F.conv2d(a, ww, bb, stride=stride, padding=padding) ** 2
            ).sum(),
            x,
            w,
            b,
            compiled=compiled,
            atol=5e-5,
            rtol=5e-4,
        )

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_conv_transpose2d(self, compiled, stride, padding):
        x = t((2, 3, 4, 4), seed=19)
        w = t((3, 2, 4, 4), seed=20, scale=0.4)
        b = t((2,), seed=21)
        gradcheck(
            lambda a, ww, bb: (
                F.conv_transpose2d(a, ww, bb, stride=stride, padding=padding) ** 2
            ).sum(),
            x,
            w,
            b,
            compiled=compiled,
            atol=5e-5,
            rtol=5e-4,
        )

class TestEngineAgreement:
    def test_compiled_matches_eager_grads_exactly_enough(self):
        """The two engines' conv gradients agree far below gradcheck noise."""
        x1 = t((2, 3, 6, 6), seed=22)
        w1 = t((4, 3, 3, 3), seed=23, scale=0.4)
        fn = lambda a, ww: (F.conv2d(a, ww, stride=2, padding=1) ** 2).sum()
        out = fn(x1, w1)
        out.backward()
        eager = (x1.grad.copy(), w1.grad.copy())
        x2 = nn.Tensor(x1.data.copy(), requires_grad=True)
        w2 = nn.Tensor(w1.data.copy(), requires_grad=True)
        step = nn.compile_train_step(lambda: {"loss": fn(x2, w2)}, [x2, w2])
        step()
        np.testing.assert_allclose(x2.grad, eager[0], rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(w2.grad, eager[1], rtol=1e-12, atol=1e-14)
