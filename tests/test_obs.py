"""Tests for :mod:`repro.obs` — tracing, metrics, sinks, reports — and
the telemetry/compile integrations that ride on them."""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec
from repro.api.events import ExperimentStarted
from repro.engine.telemetry import (
    EngineTelemetry,
    snapshot_delta,
    stage,
    stage_all,
)
from repro.obs import trace
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.report import (
    aggregate,
    build_tree,
    counter_totals,
    coverage,
    follow_trace,
    render_hot_stages,
    render_tree,
    stage_totals,
)
from repro.obs.sink import (
    TRACE_FILENAME,
    TraceSink,
    export_perfetto,
    read_trace,
    to_perfetto,
    validate_spans,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer


def collect_tracer():
    return Tracer(collect=True, trace_id="tr-test")


# ----------------------------------------------------------------------
class TestTrace:
    def test_off_path_returns_null_span(self):
        assert not trace.active()
        assert trace.span("anything") is NULL_SPAN
        assert trace.start_span("anything") is NULL_SPAN
        # the null span absorbs the whole Span API
        with trace.span("x") as s:
            s.set_attr("a", 1)
            s.add_counter("c")
            assert s.context is None

    def test_nesting_and_parentage(self):
        tracer = collect_tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        spans = tracer.drain()
        by_name = {s["name"]: s for s in spans}
        assert by_name["child"]["parent_id"] == root.span_id
        assert by_name["grandchild"]["parent_id"] == child.span_id
        assert by_name["root"]["parent_id"] is None
        # children emit before parents (emitted on finish)
        assert [s["name"] for s in spans] == ["grandchild", "child", "root"]

    def test_imposed_duration(self):
        tracer = collect_tracer()
        s = tracer.span("stage")
        s.finish(elapsed=1.5)
        (payload,) = tracer.drain()
        assert payload["t1"] - payload["t0"] == pytest.approx(1.5)

    def test_finish_idempotent(self):
        tracer = collect_tracer()
        s = tracer.span("once")
        s.finish()
        s.finish()
        assert len(tracer.drain()) == 1

    def test_error_attr_on_exception(self):
        tracer = collect_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (payload,) = tracer.drain()
        assert payload["attrs"]["error"] == "ValueError"

    def test_default_context_parents_fresh_threads(self):
        tracer = collect_tracer()
        root = tracer.span("experiment", default=True)
        root.__enter__()

        def worker():
            with tracer.span("seed"):
                pass

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        root.finish()
        spans = tracer.drain()
        seeds = [s for s in spans if s["name"] == "seed"]
        assert len(seeds) == 3
        assert all(s["parent_id"] == root.span_id for s in seeds)

    def test_out_of_order_finish_tolerated(self):
        tracer = collect_tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        # unwound thread: outer finishes while inner is still on the stack
        outer.finish()
        assert tracer.current_context() is None

    def test_activation_exclusive(self):
        a, b = Tracer(collect=True), Tracer(collect=True)
        with a.activate():
            assert trace.active()
            assert trace.current_tracer() is a
            with pytest.raises(RuntimeError):
                b.activate().__enter__()
        assert not trace.active()

    def test_reset_in_child_drops_ambient(self):
        tracer = Tracer(collect=True)
        with tracer.activate():
            trace.reset_in_child()
            assert not trace.active()
        # __exit__ after a reset must not reinstall or crash
        assert not trace.active()

    def test_id_prefix_keeps_worker_ids_distinct(self):
        parent = collect_tracer()
        worker = Tracer(collect=True, trace_id=parent.trace_id, id_prefix="w1j1-")
        parent_ids = {parent.span("a").span_id, parent.span("b").span_id}
        worker_ids = {worker.span("a").span_id, worker.span("b").span_id}
        assert not parent_ids & worker_ids

    def test_explicit_parent_and_emit_raw(self):
        parent = collect_tracer()
        with parent.span("engine") as engine_span:
            ctx = parent.current_context()
            worker = Tracer(collect=True, trace_id=parent.trace_id, id_prefix="w-")
            w = worker.span("synthesize", parent=ctx)
            w.finish()
            parent.emit_raw(worker.drain())
        spans = parent.drain()
        by_name = {s["name"]: s for s in spans}
        assert by_name["synthesize"]["parent_id"] == engine_span.span_id
        assert validate_spans(spans) == []


# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.add()
        c.add(4)
        assert c.value == 5
        assert reg.counter("hits") is c  # get-or-create
        g = reg.gauge("depth")
        g.set(2.5)
        g.add(0.5)
        assert g.value == 3.0

    def test_counter_values_missing_is_zero(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        assert reg.counter_values(["a", "b"]) == {"a": 2, "b": 0}

    def test_histogram_buckets_and_stats(self):
        h = Histogram("lat", threading.RLock(), buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.25)
        assert h.min == pytest.approx(0.05)
        assert h.max == pytest.approx(5.0)
        assert h.mean() == pytest.approx(6.25 / 4)
        d = h.as_dict()
        assert d["count"] == 4
        # +inf bucket holds the overflow observation
        assert d["buckets"]["+inf"] == 1

    def test_histogram_quantile_monotone(self):
        h = Histogram("lat", threading.RLock())
        for v in np.linspace(0.001, 0.2, 50):
            h.observe(float(v))
        assert h.quantile(0.5) <= h.quantile(0.9) <= h.quantile(0.99)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").add(1)
        b.counter("x").add(2)
        b.counter("y").add(3)
        b.histogram("h").observe(0.5)
        a.merge(b)
        assert a.counter("x").value == 3
        assert a.counter("y").value == 3
        assert a.histogram("h").count == 1

    def test_registry_snapshot_is_atomic_under_concurrency(self):
        reg = MetricsRegistry()
        a, b = reg.counter("a"), reg.counter("b")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                with reg.lock:
                    a.add()
                    b.add()

        t = threading.Thread(target=hammer)
        t.start()
        try:
            for _ in range(300):
                values = reg.counter_values(["a", "b"])
                assert values["a"] == values["b"], values
        finally:
            stop.set()
            t.join()


# ----------------------------------------------------------------------
class TestSink:
    def _spans(self, tracer=None):
        tracer = tracer or collect_tracer()
        with tracer.span("root"):
            with tracer.span("child", attrs={"batch": 2}) as c:
                c.add_counter("synth_calls", 2)
        return tracer.drain()

    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / TRACE_FILENAME)
        with TraceSink(path) as sink:
            for payload in self._spans():
                sink.write(payload)
            assert sink.written == 2
        spans = read_trace(path)
        assert [s["name"] for s in spans] == ["child", "root"]
        assert spans[0]["attrs"] == {"batch": 2}
        assert spans[0]["counters"] == {"synth_calls": 2}

    def test_torn_final_line_skipped(self, tmp_path):
        path = str(tmp_path / TRACE_FILENAME)
        with TraceSink(path) as sink:
            for payload in self._spans():
                sink.write(payload)
        with open(path, "a") as handle:
            handle.write('{"name": "torn", "trace')  # crash mid-write
        assert len(read_trace(path)) == 2

    def test_foreign_pid_write_dropped(self, tmp_path):
        path = str(tmp_path / TRACE_FILENAME)
        sink = TraceSink(path)
        real = self._spans()[0]
        sink.write(real)
        sink._pid = os.getpid() + 1  # simulate a forked child's handle
        sink.write(self._spans()[0])
        sink._pid = os.getpid()
        sink.close()
        assert len(read_trace(path)) == 1

    def test_validate_spans_clean_and_dirty(self):
        spans = self._spans()
        assert validate_spans(spans) == []
        assert validate_spans([dict(spans[0], t1=spans[0]["t0"] - 1)])
        assert validate_spans([{k: v for k, v in spans[0].items() if k != "name"}])
        assert validate_spans(spans + [dict(spans[0])])  # duplicate id
        foreign = dict(spans[0], trace_id="tr-other")
        assert validate_spans(spans + [foreign])  # two trace ids

    def test_perfetto_export(self, tmp_path):
        spans = self._spans()
        payload = to_perfetto(spans)
        events = payload["traceEvents"]
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        assert min(e["ts"] for e in events) == 0
        child = next(e for e in events if e["name"] == "child")
        assert child["args"]["batch"] == 2

        path = str(tmp_path / TRACE_FILENAME)
        with TraceSink(path) as sink:
            for s in spans:
                sink.write(s)
        out = export_perfetto(path)
        assert out.endswith(".perfetto.json")
        with open(out) as handle:
            assert len(json.load(handle)["traceEvents"]) == 2


# ----------------------------------------------------------------------
class TestReport:
    def _tree(self):
        tracer = collect_tracer()
        root = tracer.span("experiment", default=True)
        root.__enter__()
        for seed in range(2):
            with tracer.span("seed") as s:
                s.set_attr("seed", seed)
                with tracer.span("evaluate"):
                    pass
        root.finish()
        return tracer.drain()

    def test_build_tree_and_aggregate(self):
        roots = build_tree(self._tree())
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "experiment"
        assert [c.name for c in root.children] == ["seed", "seed"]
        rollup = {e["name"]: e for e in aggregate(roots)}
        assert rollup["seed"]["calls"] == 2
        assert rollup["evaluate"]["calls"] == 2
        assert root.self_time <= root.duration

    def test_orphan_parent_becomes_root(self):
        spans = self._tree()
        seeds = [s for s in spans if s["name"] == "seed"]
        orphaned = dict(seeds[0], parent_id="missing")
        roots = build_tree([orphaned])
        assert len(roots) == 1 and roots[0].name == "seed"

    def test_coverage_merges_overlapping_children(self):
        base = {"trace_id": "t", "pid": 1, "tid": 1}
        spans = [
            dict(base, name="root", span_id="r", parent_id=None, t0=0.0, t1=10.0),
            # two overlapping children: union is [0, 8] -> 80%
            dict(base, name="a", span_id="a", parent_id="r", t0=0.0, t1=5.0),
            dict(base, name="b", span_id="b", parent_id="r", t0=3.0, t1=8.0),
        ]
        (root,) = build_tree(spans)
        assert coverage(root) == pytest.approx(0.8)

    def test_stage_and_counter_totals(self):
        tracer = collect_tracer()
        for seconds in (1.0, 2.0):
            s = tracer.span("synthesis", attrs={"stage": True})
            s.finish(elapsed=seconds)
        plain = tracer.span("not_a_stage")
        plain.add_counter("queries", 3)
        plain.finish(elapsed=4.0)
        spans = tracer.drain()
        assert stage_totals(spans) == {"synthesis": pytest.approx(3.0)}
        assert counter_totals(spans) == {"queries": 3}

    def test_render_tree_collapses_repeats(self):
        tracer = collect_tracer()
        with tracer.span("root"):
            for _ in range(20):  # alternating names, like an iteration loop
                tracer.span("proposal").finish(elapsed=0.001)
                tracer.span("evaluate").finish(elapsed=0.001)
        text = render_tree(build_tree(tracer.drain()), collapse_over=8)
        assert "proposal ×20" in text
        assert "evaluate ×20" in text
        assert len(text.splitlines()) == 3  # root + two collapsed groups

    def test_render_hot_stages_table(self):
        text = render_hot_stages(build_tree(self._tree()), top=2)
        assert "span" in text and "self s" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 rows

    def test_follow_trace_tails_live_writer(self, tmp_path):
        path = str(tmp_path / TRACE_FILENAME)
        stop = threading.Event()
        seen = []

        def writer():
            with TraceSink(path) as sink:
                tracer = collect_tracer()
                for i in range(5):
                    s = tracer.span(f"s{i}")
                    s.finish()
                    sink.write(tracer.drain()[0])
                    time.sleep(0.01)

        thread = threading.Thread(target=writer)
        thread.start()
        for payload in follow_trace(path, poll_interval=0.01, stop=stop, timeout=5.0):
            seen.append(payload["name"])
            if len(seen) == 5:
                stop.set()
        thread.join()
        assert seen == [f"s{i}" for i in range(5)]


# ----------------------------------------------------------------------
class TestTelemetryObs:
    def test_stage_emits_imposed_span(self):
        tracer = collect_tracer()
        telemetry = EngineTelemetry()
        with tracer.activate():
            with stage(telemetry, "synthesis"):
                time.sleep(0.002)
        (payload,) = tracer.drain()
        assert payload["name"] == "synthesis"
        assert payload["attrs"] == {"stage": True}
        # one measurement, charged identically to both sides (abs
        # tolerance: t1 = t0 + elapsed loses ~2e-7 s to float
        # granularity at unix-epoch magnitude)
        assert payload["t1"] - payload["t0"] == pytest.approx(
            telemetry.as_dict()["stage_seconds"]["synthesis"], abs=1e-6
        )

    def test_stage_all_skips_none_sinks(self):
        live = EngineTelemetry()
        with stage_all([None, live, None], "synthesis"):
            pass
        assert live.as_dict()["stage_calls"]["synthesis"] == 1
        with stage_all([], "synthesis"):
            pass  # no sinks at all is fine too

    def test_stage_with_none_telemetry(self):
        with stage(None, "synthesis"):
            pass  # must not raise

    def test_as_dict_derived_values_consistent(self):
        telemetry = EngineTelemetry()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                telemetry.add("queries")
                telemetry.add("memory_hits")
                telemetry.add("synth_calls")

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for _ in range(200):
                d = telemetry.as_dict()
                charged = d["memory_hits"] + d["disk_hits"] + d["synth_calls"]
                expected = (
                    (d["memory_hits"] + d["disk_hits"]) / charged if charged else 0.0
                )
                # the satellite fix: ratios come from the same locked
                # snapshot as the counters, never a torn later read
                assert d["hit_rate"] == expected, d
        finally:
            stop.set()
            thread.join()

    def test_unknown_counter_raises(self):
        with pytest.raises(KeyError):
            EngineTelemetry().add("not_a_counter")

    def test_train_step_replay_histogram(self):
        telemetry = EngineTelemetry()
        telemetry.observe_latency("train_step_replay", 0.01)
        telemetry.observe_latency("train_step_replay", 0.02)
        h = telemetry.metrics.histogram("train_step_replay")
        assert h.count == 2
        assert h.sum == pytest.approx(0.03)


class TestSnapshotDelta:
    def test_empty_before_is_the_snapshot(self):
        after = {"queries": 2, "stage_seconds": {"synthesis": 1.5}}
        assert snapshot_delta({}, after) == after

    def test_disappearing_key_ignored(self):
        before = {"queries": 2, "legacy": 7}
        after = {"queries": 3}
        assert snapshot_delta(before, after) == {"queries": 1}

    def test_zero_delta_nested_dict_suppressed(self):
        before = {"queries": 1, "stage_seconds": {"synthesis": 1.0}}
        after = {"queries": 2, "stage_seconds": {"synthesis": 1.0}}
        assert snapshot_delta(before, after) == {"queries": 1}

    def test_derived_ratios_dropped(self):
        before = {"queries": 0, "hit_rate": 0.0, "synth_throughput": 0.0}
        after = {"queries": 4, "hit_rate": 0.75, "synth_throughput": 12.0}
        assert snapshot_delta(before, after) == {"queries": 4}

    def test_nested_key_appearing_mid_run(self):
        before = {"stage_seconds": {}}
        after = {"stage_seconds": {"synthesis": 0.5}}
        assert snapshot_delta(before, after) == {"stage_seconds": {"synthesis": 0.5}}


# ----------------------------------------------------------------------
class TestKernelProfiling:
    def _train(self):
        from repro.core.dataset import CircuitDataset
        from repro.core.training import TrainConfig, train_model
        from repro.core.vae import CircuitVAEModel, VAEConfig
        from repro.prefix import random_graph

        rng = np.random.default_rng(0)
        ds = CircuitDataset()
        while len(ds) < 12:
            g = random_graph(8, rng, rng.random() * 0.5)
            ds.add(g, float(g.node_count()))
        model = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=32),
            np.random.default_rng(1),
        )
        return train_model(
            model, ds, np.random.default_rng(2), TrainConfig(epochs=1, batch_size=8)
        )

    def test_profile_off_is_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        stats = self._train()
        assert stats.compiled
        assert stats.kernel_seconds == {}
        # Either engine may carry the run (recorded loop vs per-step
        # replay); whichever did must have recorded its timings.
        assert len(stats.replay_seconds) + len(stats.loop_seconds) > 0

    def test_profile_on_collects_kernel_seconds(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        stats = self._train()
        assert stats.compiled
        assert stats.kernel_seconds
        labels = set(stats.kernel_seconds)
        assert any(label.startswith("fwd:") for label in labels)
        assert any(label.startswith("bwd:") for label in labels)
        assert all(seconds > 0 for seconds in stats.kernel_seconds.values())

    def test_report_training_round_folds_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        from repro.core.training import report_training_round

        stats = self._train()

        class Sim:
            pass

        sim = Sim()
        sim.telemetry = EngineTelemetry()
        tracer = collect_tracer()
        with tracer.activate():
            report_training_round(sim, stats, round_index=0)
        d = sim.telemetry.as_dict()
        folded = {
            name: seconds
            for name, seconds in d["stage_seconds"].items()
            if name.startswith("train_kernel:")
        }
        assert folded == {
            "train_kernel:" + k: pytest.approx(v)
            for k, v in stats.kernel_seconds.items()
        }
        # matching imposed-duration spans, so trace-derived stage totals
        # keep reproducing stage_seconds under profiling too
        spans = tracer.drain()
        assert stage_totals(spans) == {
            name: pytest.approx(seconds, abs=1e-6)
            for name, seconds in folded.items()
        }
        assert sim.telemetry.metrics.histogram("train_step_replay").count == len(
            stats.replay_seconds
        )


# ----------------------------------------------------------------------
class TestTracedRun:
    def _spec(self):
        return ExperimentSpec(
            name="obs-int",
            task=TaskSpec(circuit_type="adder", n=4, delay_weight=0.66),
            methods=(MethodSpec("Random"),),
            budget=3,
            num_seeds=1,
            curve_points=3,
        )

    def test_durable_run_writes_valid_trace(self, tmp_path, monkeypatch):
        # The bench `tiny` preset, not the micro-spec: the >= 95%
        # coverage gate needs a run long enough that fixed per-run
        # overhead (observer setup, run-directory writes) stays in the
        # root span's < 5% self-time.
        from repro.api.cli import bench_presets

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        out = str(tmp_path / "run")
        started = []
        with Session() as session:
            result = session.run(
                bench_presets()["tiny"],
                out_dir=out,
                progress=lambda e: started.append(e)
                if isinstance(e, ExperimentStarted)
                else None,
            )
        path = os.path.join(out, TRACE_FILENAME)
        assert started[0].trace_path == path
        assert result.trace_path == path
        spans = read_trace(path)
        assert validate_spans(spans) == []
        roots = build_tree(spans)
        assert len(roots) == 1 and roots[0].name == "experiment"
        assert roots[0].data["attrs"]["status"] == "finished"
        assert coverage(roots[0]) >= 0.95
        from_trace = stage_totals(spans)
        for name, seconds in result.telemetry["stage_seconds"].items():
            assert from_trace[name] == pytest.approx(seconds, rel=0.01, abs=1e-6)

    def test_repro_trace_zero_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        out = str(tmp_path / "run")
        started = []
        with Session() as session:
            result = session.run(
                self._spec(),
                out_dir=out,
                progress=lambda e: started.append(e)
                if isinstance(e, ExperimentStarted)
                else None,
            )
        assert not os.path.exists(os.path.join(out, TRACE_FILENAME))
        assert started[0].trace_path is None
        assert result.trace_path is None
        assert not trace.active()

    def test_in_memory_run_never_traces(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        started = []
        with Session() as session:
            result = session.run(
                self._spec(),
                progress=lambda e: started.append(e)
                if isinstance(e, ExperimentStarted)
                else None,
            )
        assert started[0].trace_path is None
        assert result.trace_path is None
