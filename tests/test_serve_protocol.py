"""Tests for the daemon wire protocol (repro.serve.protocol)."""

import json

import pytest

from repro.circuits import adder_task
from repro.engine import task_fingerprint
from repro.prefix import sklansky
from repro.serve import protocol as wire


class TestFrames:
    def test_every_frame_round_trips(self):
        frames = [
            wire.Hello(client="t1", pid=123),
            wire.Welcome(server_pid=9, draining=True, cache_entries=4),
            wire.SubmitBatch(id="j", tenant="t1", fingerprint="f",
                             graphs=[], span=["tr", "s1"], timeout=2.5),
            wire.Accepted(id="j", position=3),
            wire.Poll(id="j"),
            wire.Pending(id="j", done=2, total=8),
            wire.BatchResult(id="j", metrics=[[1.0, 2.0]],
                             counters={"synth_calls": 1}, spans=[{"name": "x"}]),
            wire.Cancel(id="j"),
            wire.Cancelled(id="j"),
            wire.StatsRequest(),
            wire.StatsReply(server_pid=9, queues={"t1": 4},
                            schedule=[{"tenant": "t1", "count": 2}]),
            wire.Shutdown(),
            wire.Bye(),
            wire.ErrorReply(code="draining", message="m", id="j"),
        ]
        for frame in frames:
            line = wire.encode(frame)
            assert line.endswith(b"\n") and line.count(b"\n") == 1
            assert wire.decode(line) == frame

    def test_unknown_field_rejected(self):
        payload = wire.Poll(id="j").to_dict()
        payload["surprise"] = 1
        with pytest.raises(wire.ProtocolError, match="unknown field"):
            wire.decode((json.dumps(payload) + "\n").encode())

    def test_unknown_type_rejected(self):
        line = json.dumps({"v": wire.PROTOCOL_VERSION, "type": "nope"}).encode()
        with pytest.raises(wire.ProtocolError, match="unknown frame type"):
            wire.decode(line)

    def test_version_mismatch_rejected(self):
        line = json.dumps({"v": 999, "type": "poll", "id": "j"}).encode()
        with pytest.raises(wire.ProtocolError, match="version mismatch"):
            wire.decode(line)

    def test_garbage_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode(b"not json\n")
        with pytest.raises(wire.ProtocolError):
            wire.decode(b"[1,2,3]\n")


class TestDomainWireForms:
    def test_task_round_trip_is_fingerprint_identical(self):
        task = adder_task(8, 0.66)
        payload = json.loads(json.dumps(wire.task_to_dict(task)))
        rebuilt = wire.task_from_dict(payload)
        assert task_fingerprint(rebuilt) == task_fingerprint(task)
        assert rebuilt.name == task.name
        assert rebuilt.delay_weight == task.delay_weight

    def test_task_round_trip_synthesizes_identically(self):
        task = adder_task(8, 0.66)
        rebuilt = wire.task_from_dict(wire.task_to_dict(task))
        graph = sklansky(8)
        a, b = task.synthesize(graph), rebuilt.synthesize(graph)
        assert (a.area_um2, a.delay_ns) == (b.area_um2, b.delay_ns)

    def test_malformed_task_raises_protocol_error(self):
        payload = wire.task_to_dict(adder_task(8, 0.66))
        del payload["library"]
        with pytest.raises(wire.ProtocolError, match="malformed task"):
            wire.task_from_dict(payload)

    def test_graphs_round_trip_preserves_keys(self):
        graphs = [sklansky(8), sklansky(16)]
        payload = json.loads(json.dumps(wire.graphs_to_wire(graphs)))
        back = wire.graphs_from_wire(payload)
        assert [g.key() for g in back] == [g.key() for g in graphs]

    def test_malformed_graphs_raise_protocol_error(self):
        with pytest.raises(wire.ProtocolError, match="malformed graph"):
            wire.graphs_from_wire([{"nonsense": True}])


class TestSocketPathKnob:
    def test_default_socket_path_reads_env(self, monkeypatch):
        monkeypatch.delenv(wire.ENV_SOCKET, raising=False)
        assert wire.default_socket_path() is None
        monkeypatch.setenv(wire.ENV_SOCKET, "  ")
        assert wire.default_socket_path() is None
        monkeypatch.setenv(wire.ENV_SOCKET, "/tmp/x.sock")
        assert wire.default_socket_path() == "/tmp/x.sock"
