"""Golden per-node STA values pinning :func:`repro.synth.analyze_timing`.

Captured from the monolithic full-graph implementation *before* the
worklist refactor (PR 8), so the dirty-frontier STA is pinned by exact
per-net arrivals, per-gate delays and critical paths on small graphs —
not just by end-to-end ``PhysicalResult`` comparisons.  Every value must
match bit-for-bit: the delay model is pure float arithmetic in a fixed
order, so any deviation means the refactor changed the computation.
"""

import numpy as np
import pytest

from repro.prefix import brent_kung, ripple_carry, sklansky
from repro.synth import (
    IOTiming,
    analyze_timing,
    buffer_fanout,
    map_prefix_graph,
    nangate45,
    place_datapath,
)

MAKERS = {"sklansky": sklansky, "brent_kung": brent_kung, "ripple_carry": ripple_carry}

#: name -> (structure, n, circuit_type, mapping style, buffered, io timing)
CASES = {
    "sk4_adder": ("sklansky", 4, "adder", "aoi", False, None),
    "bk4_adder_andor": ("brent_kung", 4, "adder", "andor", False, None),
    "sk4_gray": ("sklansky", 4, "gray", "aoi", False, None),
    "rc4_lzd": ("ripple_carry", 4, "lzd", "aoi", False, None),
    "sk4_adder_io": (
        "sklansky", 4, "adder", "aoi", False,
        ({"a[0]": 0.05, "b[2]": 0.11}, {"s[1]": 0.2, "cout": 0.07}),
    ),
    "sk8_adder_buf": ("sklansky", 8, "adder", "aoi", True, None),
}

GOLDEN = {
    "sk4_adder": dict(
        delay_ns=0.43825109649122806,
        critical_output='s[3]',
        critical_path=[3, 8, 9, 13, 14, 19],
        arrival_ns=[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.09784456521739132, 0.09782894736842106, 0.057307608695652185, 0.10953881578947366, 0.09270652173913044, 0.15137894736842106, 0.057307608695652185, 0.14762105263157896, 0.15925548245614032, 0.2488554824561403, 0.19733771929824562, 0.22951271929824563, 0.21221699084668194, 0.298572149122807, 0.340422149122807, 0.298572149122807, 0.348572149122807, 0.20736776315789474, 0.3466844298245614, 0.43825109649122806],
        gate_delay_ns=[0.09784456521739132, 0.09782894736842106, 0.057307608695652185, 0.10953881578947366, 0.09270652173913044, 0.15137894736842106, 0.057307608695652185, 0.14762105263157896, 0.049716666666666666, 0.0896, 0.049716666666666666, 0.032175, 0.06083804347826088, 0.049716666666666666, 0.04185, 0.049716666666666666, 0.05, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106],
    ),
    "bk4_adder_andor": dict(
        delay_ns=0.5301202898550725,
        critical_output='s[3]',
        critical_path=[3, 8, 9, 13, 14, 19],
        arrival_ns=[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.09469239130434784, 0.09782894736842106, 0.058473913043478265, 0.10618355263157896, 0.09072065217391304, 0.1480236842105263, 0.058473913043478265, 0.14426578947368418, 0.16112703089244854, 0.2995186975591152, 0.19920926773455375, 0.26464260106788706, 0.2057095537757437, 0.3544621758199848, 0.43229134248665146, 0.3544621758199848, 0.44383717581998483, 0.2040125, 0.39734764492753627, 0.5301202898550725],
        gate_delay_ns=[0.09469239130434784, 0.09782894736842106, 0.058473913043478265, 0.10618355263157896, 0.09072065217391304, 0.1480236842105263, 0.058473913043478265, 0.14426578947368418, 0.05494347826086957, 0.13839166666666666, 0.05494347826086957, 0.06543333333333333, 0.0576858695652174, 0.05494347826086957, 0.07782916666666667, 0.05494347826086957, 0.08937500000000001, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106],
    ),
    "sk4_gray": dict(
        delay_ns=0.2781973684210527,
        critical_output='bin[1]',
        critical_path=[0, 2],
        arrival_ns=[0.0, 0.0, 0.0, 0.0, 0.18036842105263162, 0.0831328947368421, 0.2781973684210527, 0.2781973684210527],
        gate_delay_ns=[0.18036842105263162, 0.0831328947368421, 0.09782894736842106, 0.09782894736842106],
    ),
    "rc4_lzd": dict(
        delay_ns=0.3928513586956522,
        critical_output='hot[3]',
        critical_path=[0, 1, 2, 8],
        arrival_ns=[0.0, 0.0, 0.0, 0.0, 0.11540625, 0.23081249999999998, 0.31306875, 0.029674999999999997, 0.19518885869565217, 0.14508125, 0.31059510869565216, 0.2604875, 0.3928513586956522, 0.36306875],
        gate_delay_ns=[0.11540625, 0.11540624999999999, 0.08225625, 0.029674999999999997, 0.07978260869565218, 0.029674999999999997, 0.07978260869565218, 0.029674999999999997, 0.07978260869565218, 0.05],
    ),
    "sk4_adder_io": dict(
        delay_ns=0.4919336575133486,
        critical_output='cout',
        critical_path=[5, 12, 15, 16],
        arrival_ns=[0.05, 0.0, 0.0, 0.0, 0.0, 0.0, 0.11, 0.0, 0.1478445652173913, 0.14782894736842106, 0.057307608695652185, 0.10953881578947366, 0.20270652173913045, 0.26137894736842104, 0.057307608695652185, 0.14762105263157896, 0.19756123188405797, 0.28716123188405795, 0.25242318840579714, 0.28459818840579715, 0.3222169908466819, 0.33687789855072464, 0.37872789855072464, 0.3719336575133486, 0.4219336575133486, 0.24567351258581238, 0.384990179252479, 0.4765568459191457],
        gate_delay_ns=[0.09784456521739132, 0.09782894736842106, 0.057307608695652185, 0.10953881578947366, 0.09270652173913044, 0.15137894736842106, 0.057307608695652185, 0.14762105263157896, 0.049716666666666666, 0.0896, 0.049716666666666666, 0.032175, 0.06083804347826088, 0.049716666666666666, 0.04185, 0.049716666666666666, 0.05, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106],
    ),
    "sk8_adder_buf": dict(
        delay_ns=0.6304737155388471,
        critical_output='s[5]',
        critical_path=[3, 16, 17, 29, 30, 52, 37, 38, 49],
        arrival_ns=[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.09784456521739132, 0.09782894736842106, 0.057307608695652185, 0.10953881578947366, 0.09270652173913044, 0.15137894736842106, 0.057307608695652185, 0.14762105263157896, 0.10329782608695653, 0.17392631578947368, 0.057307608695652185, 0.1588947368421053, 0.09270652173913044, 0.19697697368421055, 0.057307608695652185, 0.1588947368421053, 0.15925548245614032, 0.2488554824561403, 0.19733771929824562, 0.22951271929824563, 0.21221699084668194, 0.20861140350877197, 0.296936403508772, 0.29925783752860413, 0.20861140350877197, 0.24078640350877198, 0.27947045194508013, 0.298572149122807, 0.340422149122807, 0.298572149122807, 0.365847149122807, 0.34665307017543867, 0.38162807017543865, 0.3671567505720824, 0.34665307017543867, 0.38162807017543865, 0.3671567505720824, 0.49079476817042605, 0.532644768170426, 0.49079476817042605, 0.532644768170426, 0.49079476817042605, 0.532644768170426, 0.49079476817042605, 0.540794768170426, 0.20736776315789474, 0.3466844298245614, 0.43825109649122806, 0.5177546679197995, 0.6304737155388471, 0.6304737155388471, 0.6304737155388471, 0.44107810150375937, 0.41992572055137845],
        gate_delay_ns=[0.09784456521739132, 0.09782894736842106, 0.057307608695652185, 0.10953881578947366, 0.09270652173913044, 0.15137894736842106, 0.057307608695652185, 0.14762105263157896, 0.10329782608695653, 0.17392631578947368, 0.057307608695652185, 0.1588947368421053, 0.09270652173913044, 0.19697697368421055, 0.057307608695652185, 0.1588947368421053, 0.049716666666666666, 0.0896, 0.049716666666666666, 0.032175, 0.06083804347826088, 0.049716666666666666, 0.088325, 0.12533152173913042, 0.049716666666666666, 0.032175, 0.08249347826086957, 0.049716666666666666, 0.04185, 0.049716666666666666, 0.06727500000000002, 0.049716666666666666, 0.034975, 0.06789891304347827, 0.049716666666666666, 0.034975, 0.06789891304347827, 0.049716666666666666, 0.04185, 0.049716666666666666, 0.04185, 0.049716666666666666, 0.04185, 0.049716666666666666, 0.05, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106, 0.09782894736842106, 0.07523095238095237, 0.05407857142857142],
    ),
}


def _build(name):
    maker, n, circuit_type, style, buffered, io = CASES[name]
    netlist = map_prefix_graph(MAKERS[maker](n), nangate45(), circuit_type, style=style)
    place_datapath(netlist)
    if buffered:
        buffer_fanout(netlist, 4)
        place_datapath(netlist)
    io_timing = IOTiming(input_arrival=io[0], output_margin=io[1]) if io else None
    return netlist, io_timing


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_timing(name):
    netlist, io_timing = _build(name)
    golden = GOLDEN[name]
    report = analyze_timing(netlist, io_timing)
    assert report.delay_ns == golden["delay_ns"]
    assert report.critical_output == golden["critical_output"]
    assert report.critical_path == golden["critical_path"]
    assert np.array_equal(report.arrival_ns, np.array(golden["arrival_ns"]))
    assert np.array_equal(report.gate_delay_ns, np.array(golden["gate_delay_ns"]))


@pytest.mark.parametrize("name", ["sk4_adder", "sk4_adder_io"])
def test_golden_slack(name):
    # slack(net) is defined against the critical delay (required time at
    # every endpoint == delay_ns in this single-corner model).
    netlist, io_timing = _build(name)
    golden = GOLDEN[name]
    report = analyze_timing(netlist, io_timing)
    for net, arrival in enumerate(golden["arrival_ns"]):
        assert report.slack_ns(net) == golden["delay_ns"] - arrival


class TestWorklistRetime:
    """Cone-limited retiming must equal full re-analysis bit for bit."""

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_retime_after_swap_matches_full(self, name):
        from repro.synth import (
            dirty_after_swaps,
            extract_report,
            retime,
            timing_state,
        )

        netlist, io_timing = _build(name)
        order = netlist.topological_order()
        state = retime(netlist, timing_state(netlist, io_timing), order=order)
        # Upsize a few gates spread over the netlist, one at a time.
        for gate_index in range(0, len(netlist.gates), max(1, len(netlist.gates) // 5)):
            bigger = netlist.library.resize(netlist.gates[gate_index].cell, +1)
            if bigger is None:
                continue
            netlist.swap_cell(gate_index, bigger)
            state = retime(
                netlist,
                state,
                dirty_gates=dirty_after_swaps(netlist, [gate_index]),
                order=order,
            )
            full = analyze_timing(netlist, io_timing)
            incremental = extract_report(netlist, state, io_timing)
            assert np.array_equal(incremental.arrival_ns, full.arrival_ns)
            assert np.array_equal(incremental.gate_delay_ns, full.gate_delay_ns)
            assert incremental.delay_ns == full.delay_ns
            assert incremental.critical_output == full.critical_output
            assert incremental.critical_path == full.critical_path

    def test_empty_frontier_is_noop(self):
        from repro.synth import extract_report, retime, timing_state

        netlist, io_timing = _build("sk4_adder")
        state = retime(netlist, timing_state(netlist, io_timing))
        before = state.copy()
        retime(netlist, state, dirty_gates=[])
        assert np.array_equal(state.arrival_ns, before.arrival_ns)
        full = analyze_timing(netlist, io_timing)
        assert extract_report(netlist, state, io_timing).delay_ns == full.delay_ns
