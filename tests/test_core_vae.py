"""Tests for the CircuitVAE model (repro.core.vae)."""

import numpy as np
import pytest

from repro import nn
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import sklansky


@pytest.fixture(scope="module")
def model():
    return CircuitVAEModel(VAEConfig(n=8, latent_dim=6, base_channels=4, hidden_dim=32), np.random.default_rng(0))


def grids(n, count=3):
    return np.stack([sklansky(n).grid.astype(float)] * count)


class TestShapes:
    def test_encode_shapes(self, model):
        mu, logvar = model.encode(grids(8))
        assert mu.shape == (3, 6) and logvar.shape == (3, 6)

    def test_decode_shapes(self, model):
        logits = model.decode(nn.Tensor(np.zeros((5, 6))))
        assert logits.shape == (5, 8, 8)

    def test_forward_shapes(self, model):
        rng = np.random.default_rng(1)
        logits, mu, logvar, z, cost = model(grids(8), rng)
        assert logits.shape == (3, 8, 8)
        assert z.shape == (3, 6)
        assert cost.shape == (3,)

    def test_nonmultiple_of_four_width(self):
        """Gray tasks use widths like 13/26/31; padding must handle them."""
        m = CircuitVAEModel(VAEConfig(n=13, latent_dim=4, base_channels=4, hidden_dim=16), np.random.default_rng(2))
        mu, _ = m.encode(grids(13, 2))
        assert mu.shape == (2, 4)
        logits = m.decode(mu)
        assert logits.shape == (2, 13, 13)


class TestReparameterization:
    def test_zero_variance_is_deterministic(self, model):
        mu = nn.Tensor(np.ones((4, 6)))
        logvar = nn.Tensor(np.full((4, 6), -40.0))
        z = model.reparameterize(mu, logvar, np.random.default_rng(3))
        np.testing.assert_allclose(z.numpy(), 1.0, atol=1e-8)

    def test_samples_have_requested_moments(self, model):
        mu = nn.Tensor(np.zeros((4000, 6)))
        logvar = nn.Tensor(np.zeros((4000, 6)))
        z = model.reparameterize(mu, logvar, np.random.default_rng(4)).numpy()
        assert abs(z.mean()) < 0.05
        assert abs(z.std() - 1.0) < 0.05

    def test_gradient_flows_through_mu(self, model):
        mu = nn.Tensor(np.zeros((2, 6)), requires_grad=True)
        logvar = nn.Tensor(np.zeros((2, 6)))
        z = model.reparameterize(mu, logvar, np.random.default_rng(5))
        z.sum().backward()
        np.testing.assert_allclose(mu.grad, 1.0)


class TestDesignSampling:
    def test_designs_are_legal(self, model):
        rng = np.random.default_rng(6)
        z = rng.standard_normal((4, 6))
        designs = model.sample_designs(z, rng)
        assert len(designs) == 4
        assert all(d.is_legal() for d in designs)
        assert all(d.n == 8 for d in designs)

    def test_deterministic_threshold_mode(self, model):
        z = np.random.default_rng(7).standard_normal((2, 6))
        a = model.sample_designs(z)
        b = model.sample_designs(z)
        assert a == b


class TestCostHead:
    def test_normalizer_roundtrip(self, model):
        model.set_cost_normalizer(10.0, 2.0)
        standardized = model.standardize_costs(np.array([14.0]))
        np.testing.assert_allclose(standardized, [2.0])
        z = nn.Tensor(np.zeros((3, 6)))
        raw = model.predict_cost_raw(z)
        with nn.no_grad():
            std_pred = model.predict_cost(z).numpy()
        np.testing.assert_allclose(raw, std_pred * 2.0 + 10.0)
        model.set_cost_normalizer(0.0, 1.0)

    def test_degenerate_std_guard(self, model):
        model.set_cost_normalizer(5.0, 0.0)
        assert model.cost_std == 1.0
        model.set_cost_normalizer(0.0, 1.0)

    def test_gradient_wrt_latent_exists(self, model):
        z = nn.Tensor(np.zeros((1, 6)), requires_grad=True)
        model.predict_cost(z).sum().backward()
        assert z.grad is not None
        assert z.grad.shape == (1, 6)


class TestPersistence:
    def test_state_dict_roundtrip(self, model, tmp_path):
        clone = CircuitVAEModel(model.config, np.random.default_rng(99))
        path = str(tmp_path / "vae.npz")
        nn.save_module(model, path)
        nn.load_module(clone, path)
        x = grids(8, 2)
        a_mu, _ = model.encode(x)
        b_mu, _ = clone.encode(x)
        np.testing.assert_allclose(a_mu.numpy(), b_mu.numpy())
