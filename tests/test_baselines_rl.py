"""Tests for the PrefixRL-style baseline (repro.baselines.rl)."""

import numpy as np
import pytest

from repro.baselines import PrefixEnv, PrefixRL, QNetwork, RLConfig
from repro.circuits import adder_task
from repro.opt import CircuitSimulator


@pytest.fixture
def sim():
    return CircuitSimulator(adder_task(8, 0.66), budget=100)


class TestEnv:
    def test_reset_starts_from_classic(self, sim):
        env = PrefixEnv(sim, np.random.default_rng(0))
        state = env.reset()
        assert state.is_legal()
        assert np.isfinite(env.state_cost)

    def test_step_requires_reset(self, sim):
        env = PrefixEnv(sim, np.random.default_rng(1))
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_step_reward_is_cost_delta(self, sim):
        env = PrefixEnv(sim, np.random.default_rng(2))
        env.reset()
        before = env.state_cost
        _, reward = env.step(3)
        assert reward == pytest.approx(before - env.state_cost)

    def test_states_always_legal(self, sim):
        rng = np.random.default_rng(3)
        env = PrefixEnv(sim, rng)
        state = env.reset()
        for _ in range(20):
            action = int(rng.integers(env.num_actions))
            state, _ = env.step(action)
            assert state.is_legal()

    def test_action_space_size(self, sim):
        env = PrefixEnv(sim, np.random.default_rng(4))
        # 2 actions (set/clear) per free cell: (n-1)(n-2)/2 cells at n=8.
        assert env.num_actions == 2 * 21


class TestQNetwork:
    def test_output_shape(self):
        net = QNetwork(8, 42, RLConfig(), np.random.default_rng(0))
        out = net(np.zeros((3, 8, 8)))
        assert out.shape == (3, 42)

    def test_odd_width(self):
        net = QNetwork(13, 10, RLConfig(), np.random.default_rng(1))
        assert net(np.zeros((2, 13, 13))).shape == (2, 10)


class TestAgent:
    def test_run_exhausts_budget(self, sim):
        agent = PrefixRL(RLConfig(episode_length=10, epsilon_decay_steps=50))
        best = agent.run(sim, np.random.default_rng(5))
        assert sim.num_simulations <= 100
        assert sim.exhausted() or sim.num_simulations > 0
        assert best.cost <= max(e.cost for e in sim.history)
        assert agent.steps > 0

    def test_epsilon_decays(self):
        agent = PrefixRL(RLConfig(epsilon_start=1.0, epsilon_end=0.1, epsilon_decay_steps=10))
        assert agent._epsilon() == pytest.approx(1.0)
        agent.steps = 10
        assert agent._epsilon() == pytest.approx(0.1)
        agent.steps = 100
        assert agent._epsilon() == pytest.approx(0.1)

    def test_reproducible(self):
        def run(seed):
            sim = CircuitSimulator(adder_task(8, 0.66), budget=30)
            PrefixRL(RLConfig(episode_length=6)).run(sim, np.random.default_rng(seed))
            return [e.cost for e in sim.history]

        assert run(6) == run(6)
