"""Tests for VAE + cost-head training (repro.core.training)."""

import os

import numpy as np
import pytest

from repro import nn
from repro.core.dataset import CircuitDataset
from repro.core.training import TrainConfig, train_model
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph


def small_dataset(seed=0, size=40, n=8):
    rng = np.random.default_rng(seed)
    ds = CircuitDataset()
    while len(ds) < size:
        g = random_graph(n, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    return ds


def small_model(seed=1):
    return CircuitVAEModel(
        VAEConfig(n=8, latent_dim=8, base_channels=4, hidden_dim=48),
        np.random.default_rng(seed),
    )


@pytest.fixture(scope="module")
def toy_setup():
    """A small dataset of random 8-bit circuits with node-count cost."""
    rng = np.random.default_rng(0)
    ds = CircuitDataset()
    while len(ds) < 40:
        g = random_graph(8, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    model = CircuitVAEModel(
        VAEConfig(n=8, latent_dim=8, base_channels=4, hidden_dim=48),
        np.random.default_rng(1),
    )
    config = TrainConfig(epochs=80, batch_size=16, lr=2e-3)
    stats = train_model(model, ds, np.random.default_rng(2), config)
    return model, ds, stats


class TestTraining:
    def test_loss_decreases(self, toy_setup):
        _, _, stats = toy_setup
        assert stats.total[-1] < stats.total[0]
        assert stats.reconstruction[-1] < stats.reconstruction[0]

    def test_stats_last(self, toy_setup):
        _, _, stats = toy_setup
        last = stats.last()
        assert set(last) == {"total", "reconstruction", "kl", "cost"}

    def test_cost_head_learns_signal(self, toy_setup):
        """Predicted costs must correlate with true costs on training data."""
        model, ds, _ = toy_setup
        with nn.no_grad():
            mu, _ = model.encode(ds.grids())
        preds = model.predict_cost_raw(mu)
        corr = np.corrcoef(preds, ds.costs)[0, 1]
        assert corr > 0.6

    def test_reconstructions_resemble_inputs(self, toy_setup):
        model, ds, _ = toy_setup
        grids = ds.grids()
        with nn.no_grad():
            mu, _ = model.encode(grids)
            logits = model.decode(mu).numpy()
        accuracy = ((logits > 0) == (grids > 0.5)).mean()
        assert accuracy > 0.8

    def test_normalizer_set_from_dataset(self, toy_setup):
        model, ds, _ = toy_setup
        mean, std = ds.cost_normalizer()
        assert model.cost_mean == pytest.approx(mean)
        assert model.cost_std == pytest.approx(std)

    def test_empty_dataset_raises(self):
        model = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            train_model(model, CircuitDataset(), np.random.default_rng(0))

    def test_reweight_flag_changes_training(self):
        """With reweighting, low-cost circuits dominate minibatches, so the
        two settings visit different data and end in different states."""
        rng = np.random.default_rng(3)
        ds = CircuitDataset(k=1e-4)
        while len(ds) < 30:
            g = random_graph(8, rng, rng.random() * 0.6)
            ds.add(g, float(g.node_count()))

        def fit(reweight):
            model = CircuitVAEModel(
                VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
                np.random.default_rng(42),
            )
            train_model(
                model, ds, np.random.default_rng(43),
                TrainConfig(epochs=4, batch_size=8, reweight=reweight),
            )
            with nn.no_grad():
                mu, _ = model.encode(ds.grids())
            return mu.numpy()

        assert not np.allclose(fit(True), fit(False))


class TestCompiledTraining:
    """The compiled graph executor vs the eager reference engine."""

    def _fit(self, monkeypatch, compiled, epochs=6):
        monkeypatch.setenv("REPRO_COMPILED_TRAIN", "1" if compiled else "0")
        ds = small_dataset(seed=7)
        model = small_model(seed=8)
        stats = train_model(
            model, ds, np.random.default_rng(9),
            TrainConfig(epochs=epochs, batch_size=16),
        )
        return model, stats

    def test_compiled_matches_eager_losses_to_1e10(self, monkeypatch):
        """The acceptance-criterion equivalence contract."""
        _, eager = self._fit(monkeypatch, compiled=False)
        _, compiled = self._fit(monkeypatch, compiled=True)
        assert not eager.compiled and compiled.compiled
        for name in ("total", "reconstruction", "kl", "cost"):
            np.testing.assert_allclose(
                getattr(compiled, name), getattr(eager, name), rtol=1e-10, atol=1e-12
            )

    def test_compiled_matches_eager_parameters(self, monkeypatch):
        m_eager, _ = self._fit(monkeypatch, compiled=False)
        m_comp, _ = self._fit(monkeypatch, compiled=True)
        for (name, p1), (_, p2) in zip(
            m_eager.named_parameters(), m_comp.named_parameters()
        ):
            np.testing.assert_allclose(p2.data, p1.data, rtol=1e-9, atol=1e-11), name

    def test_compile_counters_surface_in_stats(self, monkeypatch):
        _, stats = self._fit(monkeypatch, compiled=True)
        assert stats.compile_counters.get("traces", 0) == 1
        assert stats.compile_counters.get("replays", 0) == stats.epochs_run * 2
        assert stats.compile_counters.get("fused_ops", 0) > 0
        assert stats.epochs_skipped == 0

    def test_env_optout_forces_eager(self, monkeypatch):
        _, stats = self._fit(monkeypatch, compiled=False, epochs=2)
        assert stats.compiled is False
        assert stats.compile_counters == {}

    def test_compiled_step_reused_across_rounds(self, monkeypatch):
        """One optimizer carried across train_model calls retraces nothing."""
        monkeypatch.setenv("REPRO_COMPILED_TRAIN", "1")
        ds = small_dataset(seed=10)
        model = small_model(seed=11)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(12)
        cfg = TrainConfig(epochs=2, batch_size=16)
        first = train_model(model, ds, rng, cfg, optimizer=optimizer)
        second = train_model(model, ds, rng, cfg, optimizer=optimizer)
        assert first.compile_counters.get("traces", 0) == 1
        assert second.compile_counters.get("traces", 0) == 0
        assert second.compile_counters.get("replays", 0) > 0


class TestTrainingCheckpoints:
    """Durable epoch checkpoints + exact resume (the Session.resume path)."""

    CFG = TrainConfig(epochs=6, batch_size=16, checkpoint_every=2)

    def _run(self, checkpoint_dir=None, interrupt_after=None, tag="round000"):
        ds = small_dataset(seed=20)
        model = small_model(seed=21)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(22)
        cfg = self.CFG if interrupt_after is None else TrainConfig(
            epochs=interrupt_after, batch_size=16, checkpoint_every=2
        )
        stats = train_model(
            model, ds, rng, cfg, optimizer=optimizer,
            checkpoint_dir=checkpoint_dir, checkpoint_tag=tag,
        )
        return model, optimizer, rng, stats

    def test_checkpoint_files_written(self, tmp_path):
        ckpt = str(tmp_path / "train")
        self._run(checkpoint_dir=ckpt)
        assert os.path.exists(os.path.join(ckpt, "round000.npz"))
        assert os.path.exists(os.path.join(ckpt, "round000.json"))

    def test_completed_training_fully_skipped_on_rerun(self, tmp_path):
        ckpt = str(tmp_path / "train")
        model_a, _, rng_a, stats_a = self._run(checkpoint_dir=ckpt)
        model_b, _, rng_b, stats_b = self._run(checkpoint_dir=ckpt)
        assert stats_b.epochs_skipped == self.CFG.epochs
        assert stats_b.epochs_run == 0
        np.testing.assert_array_equal(stats_b.total, stats_a.total)
        for (_, p1), (_, p2) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)
        # rng fast-forwarded to exactly where the full run left it.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_partial_checkpoint_resumes_bit_identically(self, tmp_path):
        reference_model, _, reference_rng, reference_stats = self._run()
        ckpt = str(tmp_path / "train")
        # "Crash" after 4 of 6 epochs (checkpoint_every=2 makes epoch 4
        # durable), then re-run the full schedule against the same dir.
        self._run(checkpoint_dir=ckpt, interrupt_after=4)
        # The resumed call uses the full 6-epoch config: its fingerprint
        # differs from the 4-epoch one, so rewrite the meta to the real
        # scenario — an interrupted 6-epoch run checkpointed at epoch 4.
        import json
        meta_path = os.path.join(ckpt, "round000.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["fingerprint"]["epochs"] = 6
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        model, _, rng, stats = self._run(checkpoint_dir=ckpt)
        assert stats.epochs_skipped == 4
        assert stats.epochs_run == 2
        np.testing.assert_array_equal(stats.total, reference_stats.total)
        for (_, p1), (_, p2) in zip(
            reference_model.named_parameters(), model.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)
        assert rng.bit_generator.state == reference_rng.bit_generator.state

    def test_fingerprint_mismatch_ignores_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "train")
        self._run(checkpoint_dir=ckpt)
        ds = small_dataset(seed=20, size=30)  # different dataset size
        model = small_model(seed=21)
        stats = train_model(
            model, ds, np.random.default_rng(22), self.CFG,
            checkpoint_dir=ckpt, checkpoint_tag="round000",
        )
        assert stats.epochs_skipped == 0
        assert stats.epochs_run == self.CFG.epochs

    def test_corrupt_checkpoint_meta_ignored(self, tmp_path):
        ckpt = str(tmp_path / "train")
        self._run(checkpoint_dir=ckpt)
        with open(os.path.join(ckpt, "round000.json"), "w") as handle:
            handle.write("{ truncated")
        _, _, _, stats = self._run(checkpoint_dir=ckpt)
        assert stats.epochs_skipped == 0

    def test_torn_checkpoint_pair_ignored(self, tmp_path):
        """npz newer than json (crash between the two writes): ignore."""
        import json
        ckpt = str(tmp_path / "train")
        self._run(checkpoint_dir=ckpt)
        meta_path = os.path.join(ckpt, "round000.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["epoch"] = 2  # pretend the meta write never caught up
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        _, _, _, stats = self._run(checkpoint_dir=ckpt)
        assert stats.epochs_skipped == 0
        assert stats.epochs_run == self.CFG.epochs

    def test_unapplicable_checkpoint_rolls_back_and_retrains(self, tmp_path):
        """Fingerprint-matching checkpoint whose arrays no longer fit the
        model must be ignored without half-restoring anything."""
        import json
        ckpt = str(tmp_path / "train")
        self._run(checkpoint_dir=ckpt)
        # Same parameter *count*, different architecture: hidden_dim 48
        # -> latent 12 keeps num_parameters from distinguishing them? It
        # does not need to: we force the fingerprint to match instead.
        ds = small_dataset(seed=20)
        model = small_model(seed=21)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        meta_path = os.path.join(ckpt, "round000.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        # Corrupt the archive side: rename one parameter key so
        # load_state_dict must reject it after the gates pass.
        npz_path = os.path.join(ckpt, "round000.npz")
        state = nn.load_state(npz_path)
        first = next(name for name in state if name.startswith("param:"))
        state["param:not.a.real.parameter"] = state.pop(first)
        nn.save_state(state, npz_path)
        stats = train_model(
            model, ds, np.random.default_rng(22), self.CFG,
            optimizer=optimizer, checkpoint_dir=ckpt, checkpoint_tag="round000",
        )
        assert stats.epochs_skipped == 0
        assert stats.epochs_run == self.CFG.epochs
        assert meta["epoch"] == self.CFG.epochs  # gates genuinely matched


class TestRecordedLoopCheckpoints:
    """Checkpoint/resume interplay with the recorded-loop engine.

    Segments end exactly at checkpoint boundaries, so every durable save
    point (and any resume from one) must be bit-identical to per-step
    execution — in particular, checkpoints written by one engine must
    resume exactly under the other."""

    CFG = TrainConfig(epochs=6, batch_size=16, checkpoint_every=2)

    def _run(self, monkeypatch, loop, checkpoint_dir=None, interrupt_after=None):
        monkeypatch.setenv("REPRO_COMPILED_TRAIN", "1")
        monkeypatch.setenv("REPRO_COMPILED_LOOP", loop)
        ds = small_dataset(seed=20)
        model = small_model(seed=21)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(22)
        cfg = self.CFG if interrupt_after is None else TrainConfig(
            epochs=interrupt_after, batch_size=16, checkpoint_every=2
        )
        stats = train_model(
            model, ds, rng, cfg, optimizer=optimizer,
            checkpoint_dir=checkpoint_dir, checkpoint_tag="round000",
        )
        return model, rng, stats

    @staticmethod
    def _rewrite_epochs(checkpoint_dir, epochs):
        """Make an interrupted-run checkpoint resumable into the full
        schedule (the interrupted call's fingerprint recorded fewer)."""
        import json
        meta_path = os.path.join(checkpoint_dir, "round000.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["fingerprint"]["epochs"] = epochs
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)

    @staticmethod
    def _assert_identical(run_a, run_b):
        model_a, rng_a, stats_a = run_a
        model_b, rng_b, stats_b = run_b
        np.testing.assert_array_equal(stats_b.total, stats_a.total)
        for (_, p1), (_, p2) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_segments_align_with_checkpoint_boundaries(self, monkeypatch, tmp_path):
        _, _, stats = self._run(monkeypatch, "1", checkpoint_dir=str(tmp_path / "c"))
        # 6 epochs, checkpoint_every=2: three segments, no per-step replays.
        assert len(stats.loop_seconds) == 3
        assert stats.replay_seconds == []

    @pytest.mark.parametrize("loop", ["0", "1"])
    def test_boundary_interrupt_resumes_bit_identically(
        self, monkeypatch, tmp_path, loop
    ):
        reference = self._run(monkeypatch, loop)
        ckpt = str(tmp_path / "train")
        # "Crash" at epoch 4 (a durable segment boundary), then resume
        # the full schedule against the same directory.
        self._run(monkeypatch, loop, checkpoint_dir=ckpt, interrupt_after=4)
        self._rewrite_epochs(ckpt, self.CFG.epochs)
        resumed = self._run(monkeypatch, loop, checkpoint_dir=ckpt)
        assert resumed[2].epochs_skipped == 4
        assert resumed[2].epochs_run == 2
        self._assert_identical(reference, resumed)

    @pytest.mark.parametrize("write_loop,resume_loop", [("0", "1"), ("1", "0")])
    def test_cross_engine_resume_bit_identical(
        self, monkeypatch, tmp_path, write_loop, resume_loop
    ):
        """A checkpoint written by either engine resumes exactly under
        the other — save-point states are bitwise engine-independent."""
        reference = self._run(monkeypatch, resume_loop)
        ckpt = str(tmp_path / "train")
        self._run(
            monkeypatch, write_loop, checkpoint_dir=ckpt, interrupt_after=4
        )
        self._rewrite_epochs(ckpt, self.CFG.epochs)
        resumed = self._run(monkeypatch, resume_loop, checkpoint_dir=ckpt)
        assert resumed[2].epochs_skipped == 4
        self._assert_identical(reference, resumed)

    @pytest.mark.parametrize("loop", ["0", "1"])
    def test_completed_run_fully_skipped(self, monkeypatch, tmp_path, loop):
        ckpt = str(tmp_path / "train")
        first = self._run(monkeypatch, loop, checkpoint_dir=ckpt)
        second = self._run(monkeypatch, loop, checkpoint_dir=ckpt)
        assert second[2].epochs_skipped == self.CFG.epochs
        assert second[2].epochs_run == 0
        assert second[2].loop_seconds == []  # nothing left to replay
        self._assert_identical(first, second)
