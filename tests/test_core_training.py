"""Tests for VAE + cost-head training (repro.core.training)."""

import numpy as np
import pytest

from repro import nn
from repro.core.dataset import CircuitDataset
from repro.core.training import TrainConfig, train_model
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph


@pytest.fixture(scope="module")
def toy_setup():
    """A small dataset of random 8-bit circuits with node-count cost."""
    rng = np.random.default_rng(0)
    ds = CircuitDataset()
    while len(ds) < 40:
        g = random_graph(8, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    model = CircuitVAEModel(
        VAEConfig(n=8, latent_dim=8, base_channels=4, hidden_dim=48),
        np.random.default_rng(1),
    )
    config = TrainConfig(epochs=80, batch_size=16, lr=2e-3)
    stats = train_model(model, ds, np.random.default_rng(2), config)
    return model, ds, stats


class TestTraining:
    def test_loss_decreases(self, toy_setup):
        _, _, stats = toy_setup
        assert stats.total[-1] < stats.total[0]
        assert stats.reconstruction[-1] < stats.reconstruction[0]

    def test_stats_last(self, toy_setup):
        _, _, stats = toy_setup
        last = stats.last()
        assert set(last) == {"total", "reconstruction", "kl", "cost"}

    def test_cost_head_learns_signal(self, toy_setup):
        """Predicted costs must correlate with true costs on training data."""
        model, ds, _ = toy_setup
        with nn.no_grad():
            mu, _ = model.encode(ds.grids())
        preds = model.predict_cost_raw(mu)
        corr = np.corrcoef(preds, ds.costs)[0, 1]
        assert corr > 0.6

    def test_reconstructions_resemble_inputs(self, toy_setup):
        model, ds, _ = toy_setup
        grids = ds.grids()
        with nn.no_grad():
            mu, _ = model.encode(grids)
            logits = model.decode(mu).numpy()
        accuracy = ((logits > 0) == (grids > 0.5)).mean()
        assert accuracy > 0.8

    def test_normalizer_set_from_dataset(self, toy_setup):
        model, ds, _ = toy_setup
        mean, std = ds.cost_normalizer()
        assert model.cost_mean == pytest.approx(mean)
        assert model.cost_std == pytest.approx(std)

    def test_empty_dataset_raises(self):
        model = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            train_model(model, CircuitDataset(), np.random.default_rng(0))

    def test_reweight_flag_changes_training(self):
        """With reweighting, low-cost circuits dominate minibatches, so the
        two settings visit different data and end in different states."""
        rng = np.random.default_rng(3)
        ds = CircuitDataset(k=1e-4)
        while len(ds) < 30:
            g = random_graph(8, rng, rng.random() * 0.6)
            ds.add(g, float(g.node_count()))

        def fit(reweight):
            model = CircuitVAEModel(
                VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
                np.random.default_rng(42),
            )
            train_model(
                model, ds, np.random.default_rng(43),
                TrainConfig(epochs=4, batch_size=8, reweight=reweight),
            )
            with nn.no_grad():
                mu, _ = model.encode(ds.grids())
            return mu.numpy()

        assert not np.allclose(fit(True), fit(False))
