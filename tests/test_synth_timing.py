"""Tests for placement and static timing analysis (repro.synth.timing)."""

import numpy as np
import pytest

from repro.prefix import kogge_stone, ripple_carry, sklansky
from repro.synth import (
    IOTiming,
    analyze_timing,
    map_adder,
    nangate45,
    net_load,
    place_datapath,
    total_wire_length,
    wire_length,
)


@pytest.fixture(scope="module")
def lib():
    return nangate45()


def placed_netlist(graph, lib):
    nl = map_adder(graph, lib)
    place_datapath(nl)
    return nl


class TestPlacement:
    def test_columns_respect_bit_positions(self, lib):
        nl = placed_netlist(ripple_carry(8), lib)
        # Sum XOR for bit 7 sits at column 7.
        s7 = next(g for g in nl.gates if nl.net_names[g.output] == "s7")
        assert s7.x == pytest.approx(7 * lib.bit_pitch_um)

    def test_rows_grow_with_depth(self, lib):
        nl = placed_netlist(ripple_carry(8), lib)
        ys = [g.y for g in nl.gates]
        assert max(ys) > min(ys)

    def test_wire_length_positive_for_long_spans(self, lib):
        nl = placed_netlist(kogge_stone(16), lib)
        assert total_wire_length(nl) > 0

    def test_kogge_stone_wires_longest_of_log_depth_structures(self, lib):
        """KS's cross-datapath spans cost wirelength relative to Sklansky,
        one of the physical penalties the wire model must capture."""
        ks = placed_netlist(kogge_stone(16), lib)
        skl = placed_netlist(sklansky(16), lib)
        assert total_wire_length(ks) > total_wire_length(skl)

    def test_wire_length_zero_for_same_position(self, lib):
        nl = placed_netlist(ripple_carry(4), lib)
        for net in range(len(nl.net_names)):
            assert wire_length(nl, net) >= 0.0


class TestTiming:
    def test_arrival_monotone_along_paths(self, lib):
        nl = placed_netlist(sklansky(8), lib)
        report = analyze_timing(nl)
        for gate in nl.gates:
            out_arrival = report.arrival_ns[gate.output]
            for net in gate.inputs:
                assert out_arrival > report.arrival_ns[net] - 1e-12

    def test_delay_positive_and_finite(self, lib):
        report = analyze_timing(placed_netlist(sklansky(16), lib))
        assert 0 < report.delay_ns < 100

    def test_ripple_slower_than_sklansky(self, lib):
        ripple = analyze_timing(placed_netlist(ripple_carry(16), lib))
        skl = analyze_timing(placed_netlist(sklansky(16), lib))
        assert ripple.delay_ns > skl.delay_ns

    def test_critical_path_is_connected(self, lib):
        nl = placed_netlist(sklansky(16), lib)
        report = analyze_timing(nl)
        assert report.critical_path
        for up, down in zip(report.critical_path[:-1], report.critical_path[1:]):
            assert nl.gates[up].output in nl.gates[down].inputs

    def test_critical_output_is_worst(self, lib):
        nl = placed_netlist(sklansky(8), lib)
        report = analyze_timing(nl)
        worst = max(nl.primary_outputs, key=lambda o: report.arrival_ns[nl.primary_outputs[o]])
        assert report.critical_output == worst

    def test_slack_nonnegative_on_critical_delay(self, lib):
        nl = placed_netlist(sklansky(8), lib)
        report = analyze_timing(nl)
        for net in range(len(nl.net_names)):
            assert report.slack_ns(net) >= -1e-9


class TestIOTiming:
    def test_input_arrival_shifts_delay(self, lib):
        nl = placed_netlist(sklansky(8), lib)
        base = analyze_timing(nl).delay_ns
        late_a = IOTiming(input_arrival={f"a[{i}]": 1.0 for i in range(8)})
        shifted = analyze_timing(nl, late_a).delay_ns
        assert shifted >= base + 0.5

    def test_output_margin_adds(self, lib):
        nl = placed_netlist(sklansky(8), lib)
        base = analyze_timing(nl)
        margined = analyze_timing(
            nl, IOTiming(output_margin={base.critical_output: 2.0})
        )
        assert margined.delay_ns == pytest.approx(base.delay_ns + 2.0)

    def test_nonuniform_arrival_changes_critical_output(self, lib):
        nl = placed_netlist(sklansky(8), lib)
        # Make bit 0's input absurdly late: s[1] (first bit using a carry
        # that depends on bit 0) or a downstream output becomes critical.
        skewed = analyze_timing(
            nl, IOTiming(input_arrival={"a[0]": 5.0, "b[0]": 5.0})
        )
        assert skewed.delay_ns > 5.0

    def test_net_load_includes_po(self, lib):
        nl = placed_netlist(ripple_carry(4), lib)
        po_net = nl.primary_outputs["s[2]"]
        assert net_load(nl, po_net) >= 3.0  # PO_LOAD_FF
