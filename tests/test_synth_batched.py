"""Bit-identity tests for the vectorized batched synthesis fast path.

The contract of :mod:`repro.synth.batched` is exact equality with the
scalar per-graph flow on **every** ``PhysicalResult`` field — not
approximate equality.  The engine's caching and the paper's budget
accounting both rely on the two paths being interchangeable.
"""

from dataclasses import replace

import numpy as np
import pytest

from helpers import unique_random_graphs as unique_graphs

from repro.circuits import (
    adder_task,
    gray_to_binary_task,
    lzd_task,
    realistic_adder_task,
)
from repro.engine import EvaluationEngine, SynthesisPool
from repro.prefix import sklansky
from repro.synth import SynthesisOptions, scaled_library, synthesize_many


def assert_results_identical(task, graphs):
    scalar = [task.synthesize(graph) for graph in graphs]
    batched = task.evaluate_many(graphs)
    assert len(scalar) == len(batched)
    for i, (a, b) in enumerate(zip(scalar, batched)):
        assert a.area_um2 == b.area_um2, i
        assert a.delay_ns == b.delay_ns, i
        assert a.num_gates == b.num_gates, i
        assert a.num_buffers == b.num_buffers, i
        assert a.wirelength_um == b.wirelength_um, i
        assert a.cell_counts == b.cell_counts, i
        assert a.critical_output == b.critical_output, i


class TestBitIdentity:
    # n=4 has only 7 unique legal designs, so its population is smaller.
    @pytest.mark.parametrize("n,count", [(4, 6), (8, 8), (12, 8)])
    def test_adder_population(self, n, count):
        assert_results_identical(adder_task(n, 0.66), unique_graphs(n, count))

    def test_gray_population(self):
        assert_results_identical(gray_to_binary_task(n=8), unique_graphs(8, 8))

    def test_lzd_population(self):
        assert_results_identical(lzd_task(n=8), unique_graphs(8, 8))

    def test_scaled_library(self):
        task = adder_task(8, 0.5, library=scaled_library("8nm"))
        assert_results_identical(task, unique_graphs(8, 6))

    def test_datapath_io_timing(self):
        # Per-bit arrivals/margins change the critical endpoint choice.
        assert_results_identical(realistic_adder_task(8, 0.6), unique_graphs(8, 6))

    def test_andor_mapping_style(self):
        task = replace(
            adder_task(8, 0.66), options=SynthesisOptions(mapping_style="andor")
        )
        assert_results_identical(task, unique_graphs(8, 6))

    @pytest.mark.parametrize("max_fanout", [2, 3])
    def test_flow_options_fanout(self, max_fanout):
        task = replace(
            adder_task(8, 0.66), options=SynthesisOptions(max_fanout=max_fanout)
        )
        assert_results_identical(task, unique_graphs(8, 6))

    @pytest.mark.parametrize("passes", [0, 1, 2])
    def test_flow_options_sizing_passes(self, passes):
        task = replace(
            adder_task(8, 0.66), options=SynthesisOptions(sizing_passes=passes)
        )
        assert_results_identical(task, unique_graphs(8, 6))

    def test_no_area_recovery(self):
        task = replace(
            adder_task(8, 0.66), options=SynthesisOptions(area_recovery=False)
        )
        assert_results_identical(task, unique_graphs(8, 6))

    def test_dense_graphs_with_multi_level_buffering(self):
        # Dense 24-bit graphs push fanouts past max_fanout^2 so buffer
        # trees get more than one level, the trickiest ordering case.
        from repro.prefix import unique_random_graphs

        graphs = unique_random_graphs(
            24, 4, np.random.default_rng(11), density_low=0.7, density_high=0.95
        )
        assert_results_identical(adder_task(24, 0.66), graphs)

    def test_single_graph_and_duplicate_free_structures(self):
        task = adder_task(8, 0.66)
        assert_results_identical(task, [sklansky(8)])

    def test_empty_batch(self):
        assert adder_task(8, 0.66).evaluate_many([]) == []


class TestTaskValidation:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            adder_task(8, 0.66).evaluate_many([sklansky(16)])

    def test_unknown_circuit_type_rejected(self):
        task = adder_task(8, 0.66)
        with pytest.raises(ValueError, match="circuit type"):
            synthesize_many(unique_graphs(8, 2), task.library, "mystery")


class TestEngineRouting:
    @staticmethod
    def scalar_metrics(task, graphs):
        results = [task.synthesize(g) for g in graphs]
        return [(r.area_um2, r.delay_ns) for r in results]

    def test_pool_vectorized_matches_scalar(self):
        task = adder_task(16, 0.66)
        graphs = unique_graphs(16, 6)
        pool = SynthesisPool(workers=1)
        assert pool.execution_mode(len(graphs)) == "vectorized"
        assert pool.synthesize_batch(task, graphs) == self.scalar_metrics(task, graphs)

    def test_pool_chunked_across_workers_matches_scalar(self):
        task = adder_task(16, 0.66)
        graphs = unique_graphs(16, 8)
        with SynthesisPool(workers=2) as pool:
            assert pool.synthesize_batch(task, graphs) == self.scalar_metrics(
                task, graphs
            )

    def test_single_design_stays_scalar(self):
        pool = SynthesisPool(workers=1)
        assert pool.execution_mode(1) == "serial"

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZED_EVAL", "0")
        pool = SynthesisPool(workers=1)
        assert pool.execution_mode(64) == "serial"

    def test_engine_population_query_bit_identical(self):
        # End to end: EngineSimulator batches (vectorized) vs the plain
        # serial simulator must agree on every evaluation field.
        from repro.opt import CircuitSimulator

        task = adder_task(16, 0.66)
        graphs = unique_graphs(16, 10)
        serial = CircuitSimulator(task, budget=None).query_many(graphs)
        with EvaluationEngine() as engine:
            batched = engine.simulator(task).query_many(graphs)
        for a, b in zip(serial, batched):
            assert a.cost == b.cost
            assert a.area_um2 == b.area_um2
            assert a.delay_ns == b.delay_ns
            assert a.sim_index == b.sim_index
