"""Tests for utilities (repro.utils)."""

import numpy as np
import pytest

from repro.prefix import sklansky
from repro.utils import make_rng, seed_sequence, spawn
from repro.utils.plotting import ascii_plot, ascii_scatter, format_series_csv, render_prefix_graph
from repro.utils.tables import format_median_iqr, format_table


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(1).random() == make_rng(1).random()

    def test_spawn_children_independent(self):
        children = spawn(make_rng(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_seed_sequence_stable(self):
        assert seed_sequence(42, 5) == seed_sequence(42, 5)
        assert len(set(seed_sequence(42, 5))) == 5


class TestPlotting:
    def test_ascii_plot_contains_markers_and_legend(self):
        text = ascii_plot(
            {"a": ([0, 1, 2], [3.0, 2.0, 1.0]), "b": ([0, 1, 2], [1.0, 2.0, 3.0])},
            title="demo",
        )
        assert "demo" in text
        assert "* = a" in text and "o = b" in text

    def test_ascii_plot_handles_nan(self):
        text = ascii_plot({"a": ([0, 1], [float("nan"), 2.0])})
        assert "2" in text  # y-range shows the finite value

    def test_ascii_scatter_runs(self):
        text = ascii_scatter({"pts": ([1.0, 2.0], [1.0, 4.0])}, xlabel="area", ylabel="delay")
        assert "area" in text and "delay" in text

    def test_render_prefix_graph(self):
        text = render_prefix_graph(sklansky(4), label="skl4")
        lines = text.splitlines()
        assert lines[0] == "skl4"
        assert lines[1] == "o"  # row 0: diagonal only
        assert "nodes=" in lines[-1]
        # row widths are 1..n
        assert [len(l) for l in lines[1:5]] == [1, 2, 3, 4]

    def test_format_series_csv(self):
        csv = format_series_csv(["x", "y"], [[1, 2.5], [2, 3.5]])
        assert csv.splitlines()[0] == "x,y"
        assert "2.5" in csv


class TestTables:
    def test_median_iqr_format_matches_paper(self):
        assert format_median_iqr(4.54, 4.52, 4.55) == "4.54 (4.52 - 4.55)"

    def test_format_table_aligns(self):
        text = format_table(["method", "cost"], [["VAE", "4.54"], ["GA", "4.65"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("method")
        assert set(lines[1]) <= {"-", "+"}
