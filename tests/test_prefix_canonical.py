"""Stability + collision regression tests for structural cone hashing.

The contract of :mod:`repro.prefix.canonical`:

* **relabeling stability** — cones with the same split tree hash equal,
  no matter where they sit in the grid (or in which graph);
* **sensitivity** — any single node/edge change inside a cone changes
  its key, and any live-structure change changes the graph signature.

Both properties are exercised across adder/gray/lzd-relevant structures
and every bitwidth tier-1 uses (4..24); cone hashing itself is
circuit-type independent (it digests the prefix structure that all three
mappings consume).
"""

import numpy as np
import pytest

from helpers import unique_random_graphs

from repro.prefix import (
    PrefixGraph,
    brent_kung,
    cone_keys,
    kogge_stone,
    legalize,
    ripple_carry,
    shared_cone_stats,
    signature,
    sklansky,
)

SIZES = [4, 8, 12, 16, 24]
STRUCTURES = [ripple_carry, sklansky, brent_kung, kogge_stone]


class TestStability:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("make", STRUCTURES)
    def test_leaves_hash_equal(self, make, n):
        keys = make(n).cone_keys()
        leaf_keys = {keys[(i, i)] for i in range(n)}
        assert len(leaf_keys) == 1

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("make", STRUCTURES)
    def test_width2_cones_hash_equal_anywhere(self, make, n):
        # A node whose both parents are leaves is the same sub-circuit
        # wherever it appears.
        graph = make(n)
        keys = graph.cone_keys()
        width2 = [
            keys[(i, j)]
            for (i, j) in graph.internal_nodes()
            if graph.parents(i, j) == ((i, i), (i - 1, j)) and i - 1 == j
        ]
        assert len(width2) >= 1
        assert len(set(width2)) == 1

    @pytest.mark.parametrize("n", [8, 16])
    def test_sklansky_recursion_relabeled(self, n):
        # Sklansky's upper half [2n-1 : n] is a Sklansky(n) on renamed
        # inputs: every cone key of the small tree must reappear,
        # shifted by n rows/columns, in the big one.
        small = sklansky(n).cone_keys()
        big = sklansky(2 * n).cone_keys()
        for (i, j), key in small.items():
            assert big[(i + n, j + n)] == key

    def test_keys_shared_across_distinct_graphs(self):
        a, b = sklansky(8), brent_kung(8)
        shared, total = shared_cone_stats(a, b)
        assert 0 < shared < total  # common low cones, distinct high ones

    def test_repeated_calls_memoized(self):
        graph = sklansky(8)
        assert graph.cone_keys() is cone_keys(graph)


class TestSensitivity:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("make", STRUCTURES)
    def test_single_node_change_changes_keys(self, make, n):
        # Toggle single cells (removals of mutable nodes, additions at
        # empty cells); every distinct legalized mutant must re-hash the
        # output cone of the touched row and change the signature.
        graph = make(n)
        keys = graph.cone_keys()
        sig = signature(graph)
        candidates = [(i, j, False) for (i, j) in graph.internal_nodes() if j > 0]
        candidates += [
            (i, j, True)
            for i in range(2, n)
            for j in range(1, i)
            if not graph.grid[i, j]
        ]
        mutated = 0
        for i, j, value in candidates:
            if mutated >= 4:
                break
            mutant = legalize(graph.with_node(i, j, value))
            if mutant.key() == graph.key():
                continue  # legalization restored the original
            mutated += 1
            assert signature(mutant) != sig
            # The output cone above the touched node must re-hash.
            assert mutant.cone_keys()[(i, 0)] != keys[(i, 0)]
        assert mutated >= 1

    def test_edge_change_changes_cone(self):
        # Same node set except one split point: (3, 0) decomposed with
        # upper parent (3, 2) vs (3, 1) — an *edge* change.
        left = np.tril(np.ones((4, 4), dtype=bool))
        right = left.copy()
        right[3, 2] = False  # (3,0) now splits at k=1
        a, b = PrefixGraph(left), PrefixGraph(right)
        assert a.cone_keys()[(3, 0)] != b.cone_keys()[(3, 0)]
        assert signature(a) != signature(b)

    @pytest.mark.parametrize("n", [8, 12, 16])
    def test_random_population_signatures_distinct(self, n):
        # Distinct grids must never collide on the whole-graph digest:
        # with the nearest-upper-parent convention, every present cell is
        # in some output's fanin cone, so signature ⇔ grid identity.
        graphs = unique_random_graphs(n, 12, seed=3)
        sigs = {signature(g) for g in graphs}
        assert len(sigs) == len(graphs)


class TestSharedStats:
    def test_identical_graphs_fully_shared(self):
        graph = sklansky(16)
        shared, total = shared_cone_stats(graph, graph)
        assert shared == total == len(graph.internal_nodes())

    def test_multiset_semantics(self):
        # ripple chains: candidate has strictly more serial spans than a
        # 2-node base; the extra repetitions must not double-count.
        cand, base = ripple_carry(8), ripple_carry(4)
        shared, total = shared_cone_stats(cand, base)
        assert total == len(cand.internal_nodes())
        assert shared == len(base.internal_nodes())

    def test_mutant_mostly_shared(self):
        graph = sklansky(16)
        mutant = None
        for (i, j) in reversed(graph.internal_nodes()):
            if j == 0:
                continue
            candidate = legalize(graph.with_node(i, j, False))
            if candidate.key() != graph.key():
                mutant = candidate
                break
        assert mutant is not None
        shared, total = shared_cone_stats(mutant, graph)
        assert shared / total > 0.5
