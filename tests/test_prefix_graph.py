"""Tests for the prefix-graph representation (repro.prefix.graph)."""

import numpy as np
import pytest

from repro.prefix import PrefixGraph, kogge_stone, ripple_carry, sklansky


class TestConstruction:
    def test_forces_diagonal_and_output_column(self):
        g = PrefixGraph(np.zeros((4, 4)), validate=False)
        assert g.grid.diagonal().all()
        assert g.grid[:, 0].all()

    def test_ignores_upper_triangle(self):
        grid = np.ones((4, 4))
        g = PrefixGraph(grid, validate=False)
        assert not g.grid[0, 1]
        assert not g.grid[2, 3]

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            PrefixGraph(np.zeros((3, 4)))

    def test_rejects_illegal_when_validating(self):
        grid = np.zeros((5, 5), dtype=bool)
        grid[4, 2] = True  # upper parent (4,4); lower parent (3,2) missing
        with pytest.raises(ValueError):
            PrefixGraph(grid, validate=True)

    def test_single_bit(self):
        g = PrefixGraph(np.ones((1, 1)))
        assert g.node_count() == 0
        assert g.depth() == 0


class TestParents:
    def test_ripple_parents(self):
        g = ripple_carry(5)
        # Node (3, 0): row 3 has {0, 3}; upper (3,3), lower (2,0).
        assert g.parents(3, 0) == ((3, 3), (2, 0))

    def test_sklansky_parents(self):
        g = sklansky(8)
        # (7, 0) in Sklansky: row 7 has 0, 4, 6, 7 -> upper (7,4), lower (3,0)
        assert g.parents(7, 0) == ((7, 4), (3, 0))

    def test_diagonal_has_no_parents(self):
        g = ripple_carry(4)
        with pytest.raises(ValueError):
            g.parents(2, 2)


class TestMetricsAndOrder:
    def test_node_count_ripple(self):
        assert ripple_carry(8).node_count() == 7

    def test_depth_formulas(self):
        assert ripple_carry(8).depth() == 7
        assert sklansky(8).depth() == 3
        assert sklansky(16).depth() == 4
        assert kogge_stone(16).depth() == 4

    def test_levels_inputs_are_zero(self):
        levels = sklansky(8).levels()
        assert all(levels[(i, i)] == 0 for i in range(8))

    def test_topological_order_parents_first(self):
        g = kogge_stone(16)
        seen = set()
        for node in g.topological_order():
            if node[0] != node[1]:
                upper, lower = g.parents(*node)
                assert upper in seen and lower in seen
            seen.add(node)

    def test_fanouts_count_children(self):
        g = ripple_carry(4)
        fanouts = g.fanouts()
        # (0,0) is lower parent of (1,0) only.
        assert fanouts[(0, 0)] == 1
        # (3,0) is an output, nobody consumes it.
        assert fanouts[(3, 0)] == 0

    def test_evaluate_with_sum_operator(self):
        # With + as the associative operator and leaf i = 1, span (i, j)
        # must evaluate to the span length.
        g = sklansky(8)
        values = g.evaluate([1] * 8, lambda up, lo: up + lo)
        for (i, j), v in values.items():
            assert v == i - j + 1

    def test_evaluate_wrong_leaf_count(self):
        with pytest.raises(ValueError):
            sklansky(4).evaluate([1, 2], lambda a, b: a + b)


class TestIdentity:
    def test_equality_and_hash(self):
        a, b = sklansky(8), sklansky(8)
        assert a == b and hash(a) == hash(b)
        assert a != ripple_carry(8)

    def test_key_is_stable(self):
        g = sklansky(8)
        assert g.key() == g.key()

    def test_copy_is_equal_but_independent(self):
        g = sklansky(8)
        c = g.copy()
        assert c == g
        c.grid[5, 2] = not c.grid[5, 2]
        assert c.grid[5, 2] != g.grid[5, 2]

    def test_with_node_bounds(self):
        g = sklansky(8)
        with pytest.raises(IndexError):
            g.with_node(2, 5, True)

    def test_with_node_returns_raw_grid(self):
        g = ripple_carry(4)
        raw = g.with_node(3, 2, True)
        assert raw[3, 2]
        assert not g.grid[3, 2]  # original untouched

    def test_repr(self):
        assert "PrefixGraph" in repr(sklansky(8))
