"""Tests for the CircuitVAE outer loop (repro.core.algorithm)."""

import numpy as np
import pytest

from repro.circuits import adder_task
from repro.core import (
    CircuitVAEConfig,
    CircuitVAEOptimizer,
    SearchConfig,
    TrainConfig,
    build_initial_dataset,
)
from repro.opt import CircuitSimulator


def small_config(**overrides):
    base = dict(
        latent_dim=6,
        base_channels=4,
        hidden_dim=32,
        initial_samples=24,
        first_round_epochs=8,
        train=TrainConfig(epochs=4, batch_size=16),
        search=SearchConfig(num_parallel=8, num_steps=20, capture_every=10),
    )
    base.update(overrides)
    return CircuitVAEConfig(**base)


class TestInitialDataset:
    def test_contains_classics_and_respects_size(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=100)
        ds = build_initial_dataset(sim, 30, np.random.default_rng(0))
        assert len(ds) == 30
        from repro.prefix import sklansky

        assert sklansky(8) in ds

    def test_stops_at_budget(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=10)
        ds = build_initial_dataset(sim, 50, np.random.default_rng(1))
        assert len(ds) == 10
        assert sim.exhausted()


class TestOptimizer:
    def test_full_run_exhausts_budget_and_improves(self):
        task = adder_task(8, 0.66)
        sim = CircuitSimulator(task, budget=80)
        optimizer = CircuitVAEOptimizer(small_config())
        best = optimizer.run(sim, np.random.default_rng(2))
        assert sim.num_simulations == 80
        # Must improve on the best classical seed.
        from repro.prefix import STRUCTURES

        classic_best = min(task.cost(task.synthesize(b(8))) for b in STRUCTURES.values())
        assert best.cost <= classic_best

    def test_traces_recorded(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=60)
        optimizer = CircuitVAEOptimizer(small_config())
        optimizer.run(sim, np.random.default_rng(3))
        assert optimizer.traces  # at least one search round happened
        assert optimizer.dataset is not None and len(optimizer.dataset) > 0

    def test_seeded_runs_are_reproducible(self):
        def run(seed):
            sim = CircuitSimulator(adder_task(8, 0.66), budget=50)
            CircuitVAEOptimizer(small_config()).run(sim, np.random.default_rng(seed))
            return [e.cost for e in sim.history]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_budget_smaller_than_initial_dataset(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=5)
        best = CircuitVAEOptimizer(small_config()).run(sim, np.random.default_rng(4))
        assert sim.num_simulations == 5
        assert best.cost > 0

    def test_method_name(self):
        assert CircuitVAEOptimizer().method_name == "CircuitVAE"
