"""Tests for the declarative experiment specs (repro.api.spec)."""

import json

import pytest

from repro.api import (
    EngineSpec,
    ExperimentSpec,
    MethodSpec,
    TaskSpec,
    load_spec,
    save_spec,
)
from repro.circuits import CircuitTask, adder_task, datapath_io_timing


def small_spec():
    return ExperimentSpec(
        name="unit",
        task=TaskSpec(circuit_type="adder", n=6, delay_weight=0.5),
        methods=(
            MethodSpec("GA", params={"population_size": 6}),
            MethodSpec("CircuitVAE", label="vae-small",
                       params={"latent_dim": 8, "train": {"epochs": 2}}),
        ),
        budget=10,
        num_seeds=2,
        curve_points=2,
        engine=EngineSpec(parallel_seeds=2),
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = small_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = small_spec()
        text = spec.to_json()
        json.loads(text)  # valid JSON
        assert ExperimentSpec.from_json(text) == spec

    def test_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "spec.json")
        save_spec(spec, path)
        assert load_spec(path) == spec

    def test_methods_list_normalized_to_tuple(self):
        spec = ExperimentSpec(
            name="t", methods=[MethodSpec("GA")], budget=10, seeds=[1, 2]
        )
        assert isinstance(spec.methods, tuple)
        assert isinstance(spec.seeds, tuple)

    def test_explicit_seeds_round_trip(self):
        spec = ExperimentSpec(name="t", methods=(MethodSpec("GA"),),
                              budget=10, seeds=(5, 7))
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.seed_list() == [5, 7]


class TestValidation:
    def test_unknown_method_name_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            MethodSpec("NoSuchMethod")

    def test_unknown_method_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="CircuitVAE"):
            MethodSpec("NoSuchMethod")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="population_sizes"):
            MethodSpec("GA", params={"population_sizes": 4})

    def test_unknown_nested_param_rejected(self):
        with pytest.raises(ValueError, match="epochz"):
            MethodSpec("CircuitVAE", params={"train": {"epochz": 1}})

    def test_unknown_structure_name_rejected_at_spec_time(self):
        # A typo'd classical-structure name must fail validation, not
        # surface mid-run after other methods already burned synthesis.
        with pytest.raises(ValueError, match="sklansy"):
            MethodSpec("CircuitVAE", params={"fixed_init_graph": "sklansy"})

    def test_null_params_normalized_and_non_mapping_rejected(self):
        assert MethodSpec.from_dict({"method": "GA", "params": None}).params == {}
        with pytest.raises(ValueError, match="params must be an object"):
            MethodSpec("GA", params=[1, 2])

    def test_params_snapshot_isolated_from_caller(self):
        params = {"train": {"epochs": 3}}
        spec = MethodSpec("CircuitVAE", params=params)
        params["train"]["epochs"] = 99
        params["typo"] = 1
        assert spec.params == {"train": {"epochs": 3}}
        exported = spec.to_dict()
        exported["params"]["train"]["epochs"] = 42
        assert spec.params["train"]["epochs"] == 3

    def test_validation_lists_come_from_owning_modules(self):
        from repro.circuits.adder import IO_PROFILES, datapath_io_timing
        from repro.synth.library import LIBRARIES, LIBRARY_NAMES

        assert set(LIBRARIES()) == set(LIBRARY_NAMES)
        for profile in IO_PROFILES:
            datapath_io_timing(4, profile=profile)
        for library in LIBRARY_NAMES:
            TaskSpec(n=8, library=library).to_task()

    def test_unknown_experiment_field_rejected(self):
        payload = small_spec().to_dict()
        payload["budgets"] = 100
        with pytest.raises(ValueError, match="budgets"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_task_field_rejected(self):
        payload = small_spec().to_dict()
        payload["task"]["bits"] = 8
        with pytest.raises(ValueError, match="bits"):
            ExperimentSpec.from_dict(payload)

    def test_circuit_type_validation_reuses_task_constant(self):
        # every supported type is accepted...
        for circuit_type in CircuitTask.circuit_types():
            TaskSpec(circuit_type=circuit_type, n=8)
        # ...anything else is rejected with the supported list.
        with pytest.raises(ValueError, match="multiplier"):
            TaskSpec(circuit_type="multiplier")

    def test_delay_weight_range(self):
        with pytest.raises(ValueError):
            TaskSpec(delay_weight=1.5)

    def test_unknown_library_rejected(self):
        with pytest.raises(ValueError, match="library"):
            TaskSpec(library="tsmc7")

    def test_io_profile_only_for_adders(self):
        with pytest.raises(ValueError, match="io_profile"):
            TaskSpec(circuit_type="gray", io_profile="late-msb")
        with pytest.raises(ValueError, match="io_profile"):
            TaskSpec(io_profile="weird")

    def test_duplicate_method_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ExperimentSpec(
                name="t", budget=10,
                methods=(MethodSpec("GA"), MethodSpec("GA")),
            )

    def test_labels_disambiguate_one_method(self):
        spec = ExperimentSpec(
            name="t", budget=10,
            methods=(MethodSpec("GA", label="a"), MethodSpec("GA", label="b")),
        )
        assert [m.display_name for m in spec.methods] == ["a", "b"]

    def test_positive_budget_and_seeds(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="t", budget=0, methods=(MethodSpec("GA"),))
        with pytest.raises(ValueError):
            ExperimentSpec(name="t", budget=10, num_seeds=0,
                           methods=(MethodSpec("GA"),))

    def test_engine_spec_validation(self):
        with pytest.raises(ValueError):
            EngineSpec(workers=0)
        with pytest.raises(ValueError):
            EngineSpec(parallel_seeds=0)


class TestTaskBuilding:
    def test_standard_adder_matches_builder(self):
        task = TaskSpec(circuit_type="adder", n=8, delay_weight=0.66).to_task()
        reference = adder_task(8, 0.66)
        assert task.name == reference.name
        assert task.n == reference.n
        assert task.delay_weight == reference.delay_weight
        assert task.circuit_type == reference.circuit_type
        assert task.library.name == reference.library.name

    def test_gray_and_lzd_tasks(self):
        assert TaskSpec(circuit_type="gray", n=8, delay_weight=0.6).to_task().circuit_type == "gray"
        assert TaskSpec(circuit_type="lzd", n=8, delay_weight=0.6).to_task().circuit_type == "lzd"

    def test_datapath_profile_builds_realistic_timing(self):
        from repro.circuits import realistic_adder_task

        spec = TaskSpec(circuit_type="adder", n=8, delay_weight=0.6,
                        library="8nm", io_profile="late-msb")
        task = spec.to_task()
        assert task.io_timing == datapath_io_timing(8, profile="late-msb")
        assert task.library.name == "scaled-8nm"
        # built by the same builder the library exposes — names match
        assert task.name == realistic_adder_task(8, 0.6).name

    def test_name_override(self):
        task = TaskSpec(n=8, name="my-adder").to_task()
        assert task.name == "my-adder"


class TestDerivedValues:
    def test_seed_list_matches_harness_convention(self):
        from repro.utils.rng import seed_sequence

        spec = ExperimentSpec(name="t", budget=10, num_seeds=3, base_seed=4,
                              methods=(MethodSpec("GA"),))
        assert spec.seed_list() == seed_sequence(4, 3)

    def test_budget_ladder_matches_bench_convention(self):
        spec = ExperimentSpec(name="t", budget=140, curve_points=8,
                              methods=(MethodSpec("GA"),))
        # 8 even steps plus the appended full-budget endpoint (140 % 8 != 0)
        assert spec.budget_ladder() == list(range(140 // 8, 141, 140 // 8)) + [140]

    def test_budget_ladder_always_ends_at_full_budget(self):
        for budget, points in [(100, 8), (10, 3), (6, 3), (7, 7), (5, 8)]:
            spec = ExperimentSpec(name="t", budget=budget,
                                  curve_points=min(points, budget),
                                  methods=(MethodSpec("GA"),))
            ladder = spec.budget_ladder()
            assert ladder[-1] == budget, (budget, points, ladder)
            assert all(a < b for a, b in zip(ladder, ladder[1:]))
