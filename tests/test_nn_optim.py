"""Tests for optimizers and schedules (repro.nn.optim)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import Adam, CosineSchedule, SGD, StepSchedule, clip_grad_norm


def quadratic_param():
    return nn.Tensor(np.array([5.0, -3.0]), requires_grad=True)


def minimize(opt, param, steps=300):
    for _ in range(steps):
        opt.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        opt.step()
    return np.abs(param.numpy()).max()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert minimize(SGD([p], lr=0.1), p) < 1e-6

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = minimize(SGD([p1], lr=0.01), p1, steps=50)
        momentum = minimize(SGD([p2], lr=0.01, momentum=0.9), p2, steps=50)
        assert momentum < plain

    def test_weight_decay_shrinks(self):
        p = nn.Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.numpy()[0] == pytest.approx(0.9)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert minimize(Adam([p], lr=0.1), p, steps=500) < 1e-4

    def test_first_step_size_is_lr(self):
        # With bias correction, |first update| == lr regardless of grad scale.
        p = nn.Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.05)
        p.grad = np.array([123.0])
        opt.step()
        assert p.numpy()[0] == pytest.approx(1.0 - 0.05, abs=1e-6)

    def test_skips_none_grads(self):
        p = nn.Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p])
        opt.step()  # no grad: should not move or crash
        assert p.numpy()[0] == 1.0


class TestClipping:
    def test_clip_reduces_norm(self):
        p = nn.Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 10.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        p = nn.Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])


class TestSchedules:
    def test_cosine_endpoints(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_steps=10, lr_min=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.0, abs=1e-12)
        assert all(a >= b for a, b in zip(lrs[:-1], lrs[1:]))

    def test_step_schedule_halves(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepSchedule(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
