"""Unit tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from helpers import numerical_grad

from repro import nn
from repro.nn.tensor import _unbroadcast, concatenate, stack, where


def check_grad(build, *shapes, seed=0, tol=1e-6):
    """Gradcheck helper: build(*tensors) -> scalar Tensor."""
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s) * 0.7 + 0.5 for s in shapes]
    tensors = [nn.Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for arr, t in zip(arrays, tensors):
        num = numerical_grad(lambda: build(*[nn.Tensor(a) for a in arrays]).item(), arr)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, num, atol=tol, rtol=1e-4)


class TestElementwise:
    def test_add_broadcast(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_sub(self):
        check_grad(lambda a, b: (a - b * 2.0).sum(), (5,), (5,))

    def test_mul_broadcast(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 3, 4), (3, 4))

    def test_div(self):
        check_grad(lambda a, b: (a / (b * b + 1.0)).sum(), (4, 4), (4, 4))

    def test_pow(self):
        check_grad(lambda a: (a ** 3).sum(), (6,))

    def test_neg(self):
        check_grad(lambda a: (-a).sum(), (3,))

    def test_exp_log(self):
        check_grad(lambda a: ((a * a + 1.0).log() + a.exp()).sum(), (5,))

    def test_sqrt(self):
        check_grad(lambda a: (a * a + 1.0).sqrt().sum(), (4,))

    def test_tanh_sigmoid(self):
        check_grad(lambda a: (a.tanh() + a.sigmoid()).sum(), (7,))

    def test_relu_grad_zero_in_negative_region(self):
        t = nn.Tensor(np.array([-2.0, -1.0, 3.0]), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        t = nn.Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        t.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(t.grad, [0.1, 1.0])

    def test_softplus_matches_log1pexp(self):
        x = np.array([-30.0, -1.0, 0.0, 1.0, 30.0])
        out = nn.Tensor(x).softplus().numpy()
        np.testing.assert_allclose(out, np.logaddexp(0, x), rtol=1e-12)

    def test_abs(self):
        check_grad(lambda a: (a.abs() + 1.0).sum(), (5,), seed=3)

    def test_clip_gradient_mask(self):
        t = nn.Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        check_grad(lambda a: (a.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: (a * a.sum(axis=1, keepdims=True)).sum(), (3, 4))

    def test_mean(self):
        check_grad(lambda a: (a.mean(axis=1) ** 2).sum(), (2, 5))

    def test_var(self):
        check_grad(lambda a: a.var(axis=1).sum(), (3, 6))

    def test_max_reduction(self):
        t = nn.Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_array_equal(t.grad, [[0, 1], [1, 0]])

    def test_max_splits_ties(self):
        t = nn.Tensor(np.array([3.0, 3.0, 1.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])


class TestLinearAlgebraAndShape:
    def test_matmul_2d(self):
        check_grad(lambda a, b: (a @ b).sum(), (3, 4), (4, 5))

    def test_matmul_vector(self):
        check_grad(lambda a, b: (a @ b).sum(), (4,), (4,))

    def test_reshape(self):
        check_grad(lambda a: (a.reshape(2, 6) ** 2).sum(), (3, 4))

    def test_transpose(self):
        check_grad(lambda a: (a.T @ a).sum(), (3, 4))

    def test_transpose_axes(self):
        check_grad(lambda a: (a.transpose(1, 0, 2) ** 2).sum(), (2, 3, 4))

    def test_getitem(self):
        check_grad(lambda a: (a[1:, :2] ** 2).sum(), (4, 4))

    def test_getitem_fancy(self):
        idx = (np.array([0, 2]), np.array([1, 3]))
        check_grad(lambda a: (a[idx] ** 2).sum(), (4, 4))

    def test_concatenate(self):
        check_grad(lambda a, b: (concatenate([a, b], axis=1) ** 2).sum(), (2, 3), (2, 2))

    def test_stack(self):
        check_grad(lambda a, b: (stack([a, b]) ** 2).sum(), (3,), (3,))

    def test_where(self):
        cond = np.array([True, False, True])
        check_grad(lambda a, b: (where(cond, a, b) ** 2).sum(), (3,), (3,))

    def test_pad2d(self):
        check_grad(lambda a: (a.pad2d(2) ** 2).sum(), (1, 1, 3, 3))


class TestGraphMechanics:
    def test_grad_accumulates_on_reuse(self):
        t = nn.Tensor(np.ones(3), requires_grad=True)
        (t * 2 + t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0, 5.0])

    def test_backward_requires_scalar(self):
        t = nn.Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_nograd_raises(self):
        t = nn.Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_no_grad_context(self):
        t = nn.Tensor(np.ones(3), requires_grad=True)
        with nn.no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad
        assert nn.is_grad_enabled()

    def test_detach(self):
        t = nn.Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_deep_chain_no_recursion_error(self):
        t = nn.Tensor(np.ones(2), requires_grad=True)
        out = t
        for _ in range(2000):
            out = out + 0.001
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0])

    def test_zero_grad(self):
        t = nn.Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_grad(self):
        # y = (a + a*a); dy/da = 1 + 2a
        a = nn.Tensor(np.array([3.0]), requires_grad=True)
        (a + a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])


class TestUnbroadcast:
    def test_sum_leading_axes(self):
        g = np.ones((2, 3, 4))
        out = _unbroadcast(g, (4,))
        np.testing.assert_allclose(out, np.full(4, 6.0))

    def test_sum_kept_axes(self):
        g = np.ones((3, 4))
        out = _unbroadcast(g, (3, 1))
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))

    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)) is g


class TestConstructors:
    def test_factories(self):
        assert nn.zeros(2, 3).shape == (2, 3)
        assert nn.ones(4).numpy().sum() == 4.0
        r = nn.randn(5, rng=np.random.default_rng(0))
        assert r.shape == (5,)

    def test_logsumexp_stability(self):
        x = nn.Tensor(np.array([[1000.0, 1000.0]]))
        out = x.logsumexp(axis=1)
        np.testing.assert_allclose(out.numpy(), [1000.0 + np.log(2.0)])

    def test_repr_and_len(self):
        t = nn.Tensor(np.zeros((2, 2)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert len(t) == 2


class TestGradModeThreadLocal:
    def test_no_grad_is_per_thread(self):
        """Regression: one thread's no_grad section must never disable
        graph construction in a concurrently working thread (the stacked
        replica pool releases a whole wave of cells in lockstep, so
        overlapping no_grad windows are the norm, not a race)."""
        import threading

        inside = threading.Event()
        release = threading.Event()
        errors = []

        def holder():
            try:
                with nn.no_grad():
                    inside.set()
                    release.wait(timeout=30)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=holder)
        t.start()
        try:
            assert inside.wait(timeout=30)
            a = nn.Tensor(np.array([3.0]), requires_grad=True)
            out = (a * a).sum()
            assert out.requires_grad
            out.backward()
            np.testing.assert_allclose(a.grad, [6.0])
        finally:
            release.set()
            t.join(timeout=30)
        assert not errors
        assert not t.is_alive()
