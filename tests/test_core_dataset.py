"""Tests for the dataset and Eq.-2 rank weights (repro.core.dataset)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import CircuitDataset, rank_weights
from repro.prefix import brent_kung, ripple_carry, sklansky


class TestRankWeights:
    def test_lower_cost_gets_higher_weight(self):
        w = rank_weights(np.array([3.0, 1.0, 2.0]), k=1e-3)
        assert w[1] > w[2] > w[0]

    def test_weights_normalized(self):
        w = rank_weights(np.random.default_rng(0).random(50), k=1e-3)
        assert w.sum() == pytest.approx(1.0)

    def test_ties_share_weight(self):
        w = rank_weights(np.array([2.0, 1.0, 1.0]), k=1e-3)
        assert w[1] == pytest.approx(w[2])

    def test_large_k_approaches_uniform(self):
        costs = np.arange(10, dtype=float)
        w = rank_weights(costs, k=1e6)
        np.testing.assert_allclose(w, 0.1, rtol=1e-4)

    def test_small_k_concentrates_on_best(self):
        costs = np.arange(100, dtype=float)
        w = rank_weights(costs, k=1e-6)
        assert w[0] > 0.99

    def test_matches_formula(self):
        costs = np.array([5.0, 1.0, 3.0])
        k = 0.5
        raw = np.array([1 / (k * 3 + 2), 1 / (k * 3 + 0), 1 / (k * 3 + 1)])
        np.testing.assert_allclose(rank_weights(costs, k), raw / raw.sum())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            rank_weights(np.array([1.0]), k=0.0)

    def test_empty(self):
        assert rank_weights(np.zeros(0), k=1e-3).shape == (0,)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), n=st.integers(1, 60))
    def test_property_weight_order_matches_cost_order(self, seed, n):
        costs = np.random.default_rng(seed).random(n)
        w = rank_weights(costs, k=1e-3)
        order_by_cost = np.argsort(costs, kind="stable")
        sorted_w = w[order_by_cost]
        assert all(a >= b - 1e-15 for a, b in zip(sorted_w[:-1], sorted_w[1:]))


class TestCircuitDataset:
    def test_dedup(self):
        ds = CircuitDataset()
        assert ds.add(sklansky(8), 1.0)
        assert not ds.add(sklansky(8), 2.0)
        assert len(ds) == 1
        assert sklansky(8) in ds

    def test_best(self):
        ds = CircuitDataset()
        ds.add(sklansky(8), 2.0)
        ds.add(ripple_carry(8), 1.0)
        graph, cost = ds.best()
        assert cost == 1.0 and graph == ripple_carry(8)

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            CircuitDataset().best()

    def test_grids_shape(self):
        ds = CircuitDataset()
        ds.add(sklansky(8), 1.0)
        ds.add(ripple_carry(8), 2.0)
        assert ds.grids().shape == (2, 8, 8)
        assert ds.grids([1]).shape == (1, 8, 8)

    def test_sampling_prefers_low_cost(self):
        ds = CircuitDataset(k=1e-3)
        ds.add(sklansky(8), 1.0)
        ds.add(ripple_carry(8), 100.0)
        ds.add(brent_kung(8), 100.0)
        rng = np.random.default_rng(0)
        idx = ds.sample_indices(500, rng, weighted=True)
        assert (idx == 0).mean() > 0.8

    def test_uniform_sampling_flag(self):
        ds = CircuitDataset()
        ds.add(sklansky(8), 1.0)
        ds.add(ripple_carry(8), 100.0)
        rng = np.random.default_rng(0)
        idx = ds.sample_indices(1000, rng, weighted=False)
        assert abs((idx == 0).mean() - 0.5) < 0.06

    def test_sample_from_empty_raises(self):
        with pytest.raises(ValueError):
            CircuitDataset().sample_indices(1, np.random.default_rng(0))

    def test_cost_normalizer(self):
        ds = CircuitDataset()
        ds.add(sklansky(8), 2.0)
        ds.add(ripple_carry(8), 4.0)
        mean, std = ds.cost_normalizer()
        assert mean == pytest.approx(3.0)
        assert std == pytest.approx(1.0)

    def test_cost_normalizer_degenerate_std(self):
        ds = CircuitDataset()
        ds.add(sklansky(8), 2.0)
        _, std = ds.cost_normalizer()
        assert std == 1.0  # guarded against zero
