"""Tests for the physical-synthesis flow (repro.synth.physical)."""

import numpy as np
import pytest

from repro.prefix import brent_kung, kogge_stone, random_graph, ripple_carry, sklansky
from repro.synth import (
    IOTiming,
    SynthesisOptions,
    analyze_timing,
    buffer_fanout,
    map_adder,
    nangate45,
    place_datapath,
    size_gates,
    synthesize,
)


@pytest.fixture(scope="module")
def lib():
    return nangate45()


class TestBuffering:
    def test_caps_all_fanouts(self, lib):
        nl = map_adder(sklansky(32), lib)
        place_datapath(nl)
        buffer_fanout(nl, max_fanout=4)
        for net in range(len(nl.net_names)):
            assert len(nl.net_sinks[net]) <= 4

    def test_preserves_function(self, lib):
        nl = map_adder(sklansky(8), lib)
        place_datapath(nl)
        buffer_fanout(nl, max_fanout=3)
        nl.validate()
        out = nl.evaluate(
            {**{f"a[{i}]": bool((170 >> i) & 1) for i in range(8)},
             **{f"b[{i}]": bool((85 >> i) & 1) for i in range(8)}}
        )
        s = sum(int(out[f"s[{i}]"]) << i for i in range(8))
        assert s == (170 + 85) & 0xFF

    def test_no_buffers_needed_for_low_fanout(self, lib):
        nl = map_adder(ripple_carry(8), lib)
        assert buffer_fanout(nl, max_fanout=4) == 0

    def test_rejects_tiny_max_fanout(self, lib):
        nl = map_adder(ripple_carry(4), lib)
        with pytest.raises(ValueError):
            buffer_fanout(nl, max_fanout=1)

    def test_buffering_helps_high_fanout_timing(self, lib):
        """Sklansky's worst nets benefit from buffer trees."""
        raw = map_adder(sklansky(32), lib)
        place_datapath(raw)
        unbuffered = analyze_timing(raw).delay_ns
        buffered_nl = map_adder(sklansky(32), lib)
        place_datapath(buffered_nl)
        buffer_fanout(buffered_nl, max_fanout=4)
        place_datapath(buffered_nl)
        buffered = analyze_timing(buffered_nl).delay_ns
        assert buffered < unbuffered


class TestSizing:
    def test_sizing_reduces_delay(self, lib):
        nl = map_adder(sklansky(16), lib)
        place_datapath(nl)
        buffer_fanout(nl, 4)
        place_datapath(nl)
        before = analyze_timing(nl).delay_ns
        report = size_gates(nl, IOTiming(), passes=6)
        assert report.delay_ns <= before

    def test_sizing_without_recovery_uses_more_area(self, lib):
        def flow(area_recovery):
            nl = map_adder(sklansky(16), lib)
            place_datapath(nl)
            buffer_fanout(nl, 4)
            place_datapath(nl)
            size_gates(nl, IOTiming(), passes=6, area_recovery=area_recovery)
            return nl.area()

        assert flow(area_recovery=True) <= flow(area_recovery=False)


class TestSynthesize:
    def test_deterministic(self, lib):
        a = synthesize(sklansky(16), lib)
        b = synthesize(sklansky(16), lib)
        assert a.area_um2 == b.area_um2
        assert a.delay_ns == b.delay_ns

    def test_result_fields(self, lib):
        r = synthesize(brent_kung(16), lib)
        assert r.area_um2 > 0 and r.delay_ns > 0
        assert r.num_gates > 0 and r.wirelength_um > 0
        assert sum(r.cell_counts.values()) == r.num_gates
        assert r.critical_output

    def test_landscape_orderings(self, lib):
        """The qualitative trade-offs the paper's search exploits."""
        ripple = synthesize(ripple_carry(32), lib)
        skl = synthesize(sklansky(32), lib)
        ks = synthesize(kogge_stone(32), lib)
        bk = synthesize(brent_kung(32), lib)
        # Ripple: minimum area, maximum delay.
        assert ripple.area_um2 < min(skl.area_um2, ks.area_um2, bk.area_um2)
        assert ripple.delay_ns > max(skl.delay_ns, ks.delay_ns, bk.delay_ns)
        # Kogge-Stone: biggest of the log-depth structures.
        assert ks.area_um2 > max(skl.area_um2, bk.area_um2)
        # Brent-Kung: between ripple and KS in area, slower than Sklansky.
        assert ripple.area_um2 < bk.area_um2 < ks.area_um2
        assert bk.delay_ns > skl.delay_ns

    def test_mapping_style_option(self, lib):
        aoi = synthesize(sklansky(8), lib, options=SynthesisOptions(mapping_style="aoi"))
        andor = synthesize(sklansky(8), lib, options=SynthesisOptions(mapping_style="andor"))
        assert aoi.delay_ns != andor.delay_ns or aoi.area_um2 != andor.area_um2

    def test_io_timing_flows_through(self, lib):
        base = synthesize(sklansky(8), lib)
        late = synthesize(
            sklansky(8), lib,
            io_timing=IOTiming(input_arrival={f"a[{i}]": 0.5 for i in range(8)}),
        )
        assert late.delay_ns > base.delay_ns

    def test_random_graphs_synthesize(self, lib):
        rng = np.random.default_rng(0)
        for _ in range(5):
            r = synthesize(random_graph(12, rng, 0.3), lib)
            assert r.delay_ns > 0 and r.area_um2 > 0

    def test_gray_circuit_smaller_than_adder(self, lib):
        adder = synthesize(sklansky(16), lib, circuit_type="adder")
        gray = synthesize(sklansky(16), lib, circuit_type="gray")
        assert gray.area_um2 < adder.area_um2
