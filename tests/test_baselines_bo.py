"""Tests for the latent Bayesian-optimization baseline (repro.baselines.bo)."""

import numpy as np
import pytest

from repro.baselines import BOConfig, LatentBO
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.circuits import adder_task
from repro.core import CircuitVAEConfig, SearchConfig, TrainConfig
from repro.opt import CircuitSimulator


def small_bo():
    vae = CircuitVAEConfig(
        latent_dim=6, base_channels=4, hidden_dim=32, initial_samples=20,
        first_round_epochs=6, train=TrainConfig(epochs=3, batch_size=16),
        search=SearchConfig(num_parallel=6),
    )
    return LatentBO(BOConfig(vae=vae, batch_per_round=6, candidate_pool=96, gp_max_points=64))


class TestLatentBO:
    def test_run_exhausts_budget(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=60)
        best = small_bo().run(sim, np.random.default_rng(0))
        assert sim.num_simulations == 60
        assert best.cost == sim.best().cost

    def test_improves_over_initial_dataset(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=80)
        best = small_bo().run(sim, np.random.default_rng(1))
        initial_best = min(e.cost for e in sim.history[:20])
        assert best.cost <= initial_best

    def test_reproducible(self):
        def run(seed):
            sim = CircuitSimulator(adder_task(8, 0.66), budget=45)
            small_bo().run(sim, np.random.default_rng(seed))
            return [e.cost for e in sim.history]

        assert run(2) == run(2)

    def test_method_name(self):
        assert small_bo().method_name == "BO"


class TestRandomSearch:
    def test_run_and_improve(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=80)
        best = RandomSearch().run(sim, np.random.default_rng(3))
        assert sim.num_simulations == 80
        # Should at least match the best classical seed it starts from.
        classic_best = min(e.cost for e in sim.history[:6])
        assert best.cost <= classic_best

    def test_random_fraction_explores(self):
        config = RandomSearchConfig(random_fraction=1.0)
        sim = CircuitSimulator(adder_task(8, 0.66), budget=30)
        RandomSearch(config).run(sim, np.random.default_rng(4))
        assert sim.num_simulations == 30
