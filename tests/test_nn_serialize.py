"""Round-trip and atomicity tests for repro.nn.serialize."""

import os

import numpy as np
import pytest

from repro import nn
from repro.core.dataset import CircuitDataset
from repro.core.training import TrainConfig, train_model
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph


def trained_vae(tmp_seed=0):
    rng = np.random.default_rng(tmp_seed)
    ds = CircuitDataset()
    while len(ds) < 20:
        g = random_graph(8, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    model = CircuitVAEModel(
        VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
        np.random.default_rng(1),
    )
    train_model(model, ds, np.random.default_rng(2), TrainConfig(epochs=2, batch_size=8))
    return model


class TestRoundTrip:
    def test_trained_vae_roundtrip_values_shapes_dtypes(self, tmp_path):
        model = trained_vae()
        path = str(tmp_path / "vae.npz")
        nn.save_module(model, path)
        clone = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
            np.random.default_rng(99),
        )
        nn.load_module(clone, path)
        for (name_a, p_a), (name_b, p_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            assert p_a.data.shape == p_b.data.shape
            assert p_a.data.dtype == p_b.data.dtype
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_parameter_order_preserved(self, tmp_path):
        model = trained_vae()
        path = str(tmp_path / "vae.npz")
        nn.save_module(model, path)
        loaded = nn.load_state(path)
        assert list(loaded) == [name for name, _ in model.named_parameters()]

    def test_dtype_preserved_for_float32_state(self, tmp_path):
        path = str(tmp_path / "state.npz")
        state = {
            "a.weight": np.ones((2, 3), dtype=np.float32),
            "b.bias": np.zeros(4, dtype=np.float64),
        }
        nn.save_state(state, path)
        loaded = nn.load_state(path)
        assert loaded["a.weight"].dtype == np.float32
        assert loaded["b.bias"].dtype == np.float64

    def test_exact_path_no_suffix_magic(self, tmp_path):
        """save_state(path) writes exactly path, so load_state(path) works."""
        path = str(tmp_path / "checkpoint")  # deliberately no .npz suffix
        nn.save_state({"x": np.arange(3.0)}, path)
        assert os.path.exists(path)
        np.testing.assert_array_equal(nn.load_state(path)["x"], np.arange(3.0))


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "m.npz")
        nn.save_state({"x": np.ones(5)}, path)
        assert sorted(os.listdir(tmp_path)) == ["m.npz"]

    def test_overwrite_is_all_or_nothing(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous archive intact."""
        path = str(tmp_path / "m.npz")
        nn.save_state({"x": np.zeros(4)}, path)
        before = open(path, "rb").read()

        import repro.utils.io as io_mod

        def boom(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(io_mod.os, "replace", boom)
        with pytest.raises(OSError):
            nn.save_state({"x": np.ones(4)}, path)
        monkeypatch.undo()
        assert open(path, "rb").read() == before
        np.testing.assert_array_equal(nn.load_state(path)["x"], np.zeros(4))
        # ... and the failed attempt's temp file was cleaned up.
        assert sorted(os.listdir(tmp_path)) == ["m.npz"]

    def test_parent_directories_created(self, tmp_path):
        path = str(tmp_path / "nested" / "deep" / "m.npz")
        nn.save_state({"x": np.ones(2)}, path)
        assert os.path.exists(path)
