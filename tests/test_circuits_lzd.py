"""Tests for the leading-zero-detector extension (repro.circuits.lzd).

The paper's conclusion claims the method "may be applied unchanged to
optimize other prefix computations, such as leading zero detectors" —
these tests pin down that the whole stack (verify, map, synthesize,
optimize) indeed works unchanged on the OR-prefix task.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import lzd_task
from repro.opt import CircuitSimulator
from repro.prefix import (
    STRUCTURES,
    check_leading_zeros,
    make_structure,
    random_graph,
    simulate_leading_zeros,
    sklansky,
)
from repro.synth import map_leading_zero_detector, nangate45


class TestSimulation:
    def test_known_values(self):
        g = sklansky(8)
        values = np.array([0, 1, 128, 255, 16], dtype=np.uint64)
        np.testing.assert_array_equal(
            simulate_leading_zeros(g, values), [8, 7, 0, 0, 3]
        )

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_all_structures(self, name):
        rng = np.random.default_rng(0)
        assert check_leading_zeros(make_structure(name, 16), rng, trials=64)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_property_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(12, rng, float(rng.random() * 0.6))
        assert check_leading_zeros(g, rng, trials=32)


class TestMapping:
    def test_netlist_one_hot_semantics(self):
        n = 8
        nl = map_leading_zero_detector(sklansky(n), nangate45())
        rng = np.random.default_rng(1)
        for _ in range(20):
            value = int(rng.integers(0, 2 ** n))
            inputs = {f"x[{i}]": bool((value >> i) & 1) for i in range(n)}
            out = nl.evaluate(inputs)
            hots = [out[f"hot[{i}]"] for i in range(n)]
            if value == 0:
                assert out["all_zero"] and not any(hots)
            else:
                first_one = n - 1 - (n - value.bit_length())  # bit index of MSB one
                expected_i = n - 1 - first_one
                assert hots[expected_i]
                assert sum(hots) == 1
                assert not out["all_zero"]

    def test_uses_or_network(self):
        counts = map_leading_zero_detector(sklansky(8), nangate45()).count_by_function()
        assert counts["OR2"] > 0
        assert "XOR2" not in counts


class TestTask:
    def test_task_synthesizes(self):
        task = lzd_task(n=8)
        result = task.synthesize(sklansky(8))
        assert result.area_um2 > 0 and result.delay_ns > 0

    def test_optimizer_runs_unchanged(self):
        """The headline claim: the optimizer applies without modification."""
        from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig

        task = lzd_task(n=8, delay_weight=0.6)
        sim = CircuitSimulator(task, budget=40)
        optimizer = CircuitVAEOptimizer(
            CircuitVAEConfig(
                latent_dim=6, base_channels=4, hidden_dim=32, initial_samples=16,
                first_round_epochs=6, train=TrainConfig(epochs=3, batch_size=16),
                search=SearchConfig(num_parallel=6, num_steps=15, capture_every=5),
            )
        )
        best = optimizer.run(sim, np.random.default_rng(0))
        assert check_leading_zeros(best.graph, np.random.default_rng(1))
        assert sim.num_simulations == 40
