"""End-to-end tests for the streaming run lifecycle.

Covers the acceptance criteria of the job-system API: submit -> events
-> checkpoint -> interrupt -> resume, with resumed records bit-identical
to an uninterrupted run for every registered method and zero new
synthesis for already-recorded evaluations.
"""

import os

import numpy as np
import pytest

from repro.api import (
    Checkpointed,
    EvaluationDone,
    ExperimentFinished,
    ExperimentStarted,
    ExperimentSpec,
    MethodSpec,
    RunDirectory,
    SeedFinished,
    SeedStarted,
    Session,
    TaskSpec,
)
from repro.api.cli import main
from repro.opt import RunInterrupted, load_records


def assert_bit_identical(record, reference):
    """Everything paper-semantics must match exactly; telemetry may not
    (a resumed run replays recorded evaluations from the cache)."""
    assert record.method == reference.method
    assert record.task_name == reference.task_name
    assert record.seed == reference.seed
    np.testing.assert_array_equal(record.costs, reference.costs)
    np.testing.assert_array_equal(record.areas, reference.areas)
    np.testing.assert_array_equal(record.delays, reference.delays)
    assert record.best_graph == reference.best_graph


def tiny_spec(name="lifecycle", **overrides):
    base = dict(
        name=name,
        task=TaskSpec(circuit_type="adder", n=4, delay_weight=0.66),
        methods=(
            MethodSpec("GA", params={"population_size": 8}),
            MethodSpec("Random"),
        ),
        budget=6,
        num_seeds=2,
        curve_points=3,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def stop_after_checkpoints(count):
    """A synchronous on_event observer that interrupts deterministically
    after the ``count``-th Checkpointed event."""
    seen = {"n": 0}

    def observer(event):
        if isinstance(event, Checkpointed):
            seen["n"] += 1
            if seen["n"] >= count:
                raise RunInterrupted(f"test stop after checkpoint {count}")

    return observer


class TestEventStream:
    def test_stream_shape_and_contents(self):
        spec = tiny_spec()
        with Session() as session:
            handle = session.submit(spec)
            events = list(handle.events())
            result = handle.result()

        assert isinstance(events[0], ExperimentStarted)
        assert isinstance(events[-1], ExperimentFinished)
        assert events[0].methods == ("GA", "Random")
        assert tuple(events[0].seeds) == tuple(spec.seed_list())
        assert events[-1].status == "finished"

        started = [e for e in events if isinstance(e, SeedStarted)]
        finished = [e for e in events if isinstance(e, SeedFinished)]
        cells = {(m.display_name, s) for m in spec.methods for s in spec.seed_list()}
        assert {(e.method, e.seed) for e in started} == cells
        assert {(e.method, e.seed) for e in finished} == cells
        assert all(e.replayed == 0 for e in started)
        assert not any(e.resumed for e in finished)

        evaluations = [e for e in events if isinstance(e, EvaluationDone)]
        total_sims = sum(
            r.num_simulations for rs in result.records.values() for r in rs
        )
        assert len(evaluations) == total_sims
        # per-cell: sim_index counts up, best_cost is the running minimum
        for method, seed in cells:
            cell = [e for e in evaluations if (e.method, e.seed) == (method, seed)]
            assert [e.sim_index for e in cell] == list(range(1, len(cell) + 1))
            running = np.minimum.accumulate([e.cost for e in cell])
            np.testing.assert_array_equal([e.best_cost for e in cell], running)
        # engine-backed runs attach per-query telemetry deltas
        assert all(e.telemetry_delta is not None for e in evaluations)
        assert sum(
            e.telemetry_delta.get("synth_calls", 0) for e in evaluations
        ) == result.telemetry["synth_calls"]
        # in-memory run: no checkpoints
        assert not any(isinstance(e, Checkpointed) for e in events)

    def test_streamed_records_match_blocking_run(self):
        spec = tiny_spec()
        with Session() as session:
            reference = session.run(spec)
        with Session() as session:
            result = session.submit(spec).result()
        for name in reference.records:
            for a, b in zip(reference.records[name], result.records[name]):
                assert_bit_identical(b, a)


class TestRunDirectory:
    def test_layout_and_durability(self, tmp_path):
        spec = tiny_spec()
        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(spec, out_dir=out)
            events = list(handle.events())
            result = handle.result()

        run_dir = RunDirectory.open(out)
        assert run_dir.status == "finished"
        assert run_dir.spec() == spec
        assert result.run_dir == run_dir.path

        # one Checkpointed per evaluation, each after its line is durable
        checkpoints = [e for e in events if isinstance(e, Checkpointed)]
        evaluations = [e for e in events if isinstance(e, EvaluationDone)]
        assert len(checkpoints) == len(evaluations)

        for method_spec in spec.methods:
            name = method_spec.display_name
            for seed, record in zip(spec.seed_list(), result.records[name]):
                history = run_dir.load_history(name, seed)
                assert len(history) == record.num_simulations
                np.testing.assert_array_equal(
                    [e.cost for e in history], record.costs
                )
                ledgered = run_dir.completed_record(name, seed)
                assert_bit_identical(ledgered, record)

        reloaded = load_records(run_dir.records_path())
        assert len(reloaded) == len(result.all_records())
        for restored, original in zip(reloaded, result.all_records()):
            assert_bit_identical(restored, original)

    def test_refuses_existing_run_directory(self, tmp_path):
        out = str(tmp_path / "run")
        with Session() as session:
            session.run(tiny_spec(), out_dir=out)
            with pytest.raises(ValueError, match="already holds a run"):
                session.submit(tiny_spec(), out_dir=out)

    def test_progress_reports_cell_states(self, tmp_path):
        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(
                tiny_spec(), out_dir=out, on_event=stop_after_checkpoints(3)
            )
            with pytest.raises(RunInterrupted):
                handle.result()
        rows = RunDirectory.open(out).progress()
        states = {(r["method"], r["seed"]): r["state"] for r in rows}
        assert len(states) == 4
        assert "partial" in states.values() or "done" in states.values()
        assert "pending" in states.values()  # later cells never started


# ----------------------------------------------------------------------
# The acceptance criterion: interrupted-then-resumed == uninterrupted,
# bit-identically, for every registered method, with zero new synthesis
# for already-recorded evaluations.
# ----------------------------------------------------------------------
def _tiny_vae_params(initial_samples=12):
    return dict(
        latent_dim=6,
        base_channels=4,
        hidden_dim=32,
        initial_samples=initial_samples,
        first_round_epochs=4,
        train=dict(epochs=2, batch_size=16),
        search=dict(num_parallel=6, num_steps=10, capture_every=5),
    )


# method name -> (MethodSpec, TaskSpec, budget, checkpoints before stop)
RESUME_CASES = {
    "GA": (
        MethodSpec("GA", params=dict(population_size=8)),
        TaskSpec(circuit_type="adder", n=4),
        6,
        2,
    ),
    "Random": (MethodSpec("Random"), TaskSpec(circuit_type="adder", n=4), 6, 2),
    "RL": (
        MethodSpec(
            "RL",
            params=dict(
                episode_length=6, base_channels=4, hidden_dim=16,
                batch_size=8, replay_capacity=64,
            ),
        ),
        TaskSpec(circuit_type="adder", n=4),
        6,
        2,
    ),
    "CircuitVAE": (
        MethodSpec("CircuitVAE", params=_tiny_vae_params()),
        TaskSpec(circuit_type="adder", n=8),
        24,
        14,
    ),
    "BO": (
        MethodSpec(
            "BO",
            params=dict(
                vae=_tiny_vae_params(initial_samples=10),
                batch_per_round=6, candidate_pool=24, gp_max_points=24,
            ),
        ),
        TaskSpec(circuit_type="adder", n=8),
        20,
        12,
    ),
}


class TestInterruptResume:
    @pytest.mark.parametrize("name", sorted(RESUME_CASES))
    def test_resume_bit_identical_with_zero_resynthesis(self, name, tmp_path):
        method_spec, task_spec, budget, stop_at = RESUME_CASES[name]
        spec = ExperimentSpec(
            name=f"resume-{name}",
            task=task_spec,
            methods=(method_spec,),
            budget=budget,
            seeds=(0,),
            curve_points=1,
        )
        with Session() as session:
            reference = session.run(spec).records[name][0]

        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(
                spec, out_dir=out, on_event=stop_after_checkpoints(stop_at)
            )
            with pytest.raises(RunInterrupted, match="resume"):
                handle.result()
            assert handle.status == "interrupted"

        run_dir = RunDirectory.open(out)
        assert run_dir.status == "interrupted"
        recorded = len(run_dir.load_history(name, 0))
        assert recorded == stop_at  # the synchronous stop is exact
        assert recorded < reference.num_simulations  # genuinely partial
        assert run_dir.completed_record(name, 0) is None

        # Resume in a *fresh* session (empty engine cache): everything
        # recorded must come back via replay priming, not residual state.
        with Session() as session:
            handle = session.resume(out)
            replayed = [
                e.replayed for e in handle.events() if isinstance(e, SeedStarted)
            ]
            result = handle.result()

        assert replayed == [recorded]
        record = result.records[name][0]
        assert_bit_identical(record, reference)
        assert RunDirectory.open(out).status == "finished"

        # Zero new synthesis for already-recorded evaluations: the
        # replayed prefix is served from the primed cache.
        telemetry = record.telemetry
        assert telemetry["synth_calls"] == record.num_simulations - recorded
        assert telemetry["memory_hits"] + telemetry["disk_hits"] >= recorded

        # The persisted final records are identical too.
        (reloaded,) = load_records(run_dir.records_path())
        assert_bit_identical(reloaded, reference)

    def test_resume_mixed_grid_with_parallel_seeds(self, tmp_path):
        # Several methods x seeds interrupted mid-grid: resume must skip
        # ledgered cells, replay the partial one and run pending ones.
        spec = tiny_spec(name="resume-grid")
        with Session() as session:
            reference = session.run(spec)

        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(
                spec, out_dir=out, on_event=stop_after_checkpoints(8)
            )
            with pytest.raises(RunInterrupted):
                handle.result()

        with Session(parallel_seeds=2) as session:
            result = session.resume(out).result()

        for method in reference.records:
            for a, b in zip(reference.records[method], result.records[method]):
                assert_bit_identical(b, a)

    def test_resume_of_finished_run_is_a_noop(self, tmp_path):
        spec = tiny_spec(name="resume-noop")
        out = str(tmp_path / "run")
        with Session() as session:
            reference = session.run(spec, out_dir=out)
        with Session() as session:
            handle = session.resume(out)
            events = list(handle.events())
            result = handle.result()
            # every cell served from the ledger; engine did nothing
            assert session.telemetry_snapshot()["synth_calls"] == 0
        finished = [e for e in events if isinstance(e, SeedFinished)]
        assert finished and all(e.resumed for e in finished)
        assert not any(isinstance(e, SeedStarted) for e in events)
        for method in reference.records:
            for a, b in zip(reference.records[method], result.records[method]):
                assert_bit_identical(b, a)


class TestInterruptBoundaries:
    def test_interrupt_lands_on_cache_hit_queries(self):
        # A method cycling through already-evaluated designs fires no
        # on_evaluation events; the abort hook at query entry must still
        # stop it at the next boundary.
        from repro.circuits import adder_task
        from repro.opt import CircuitSimulator
        from repro.prefix import sklansky

        simulator = CircuitSimulator(adder_task(4, 0.66), budget=5)
        simulator.query(sklansky(4))

        def abort():
            raise RunInterrupted("stop requested")

        simulator.check_abort = abort
        with pytest.raises(RunInterrupted):
            simulator.query(sklansky(4))  # a pure run-memo hit

    def test_on_event_interrupt_flags_the_whole_run(self, tmp_path):
        # RunInterrupted raised by the synchronous observer must set the
        # handle's interrupt flag so sibling parallel seeds stop too —
        # and the triggering event must still reach the async stream.
        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(
                tiny_spec(name="flag"), out_dir=out,
                on_event=stop_after_checkpoints(2),
            )
            events = list(handle.events())
            with pytest.raises(RunInterrupted):
                handle.result()
            assert handle._interrupt.is_set()
        checkpoints = [e for e in events if isinstance(e, Checkpointed)]
        assert len(checkpoints) == 2  # the stopping checkpoint included
        assert isinstance(events[-1], ExperimentFinished)
        assert events[-1].status == "interrupted"

    def test_live_run_directory_refuses_concurrent_execution(self, tmp_path):
        # Two executors appending to the same cell trails would lose
        # evaluations; the advisory lock refuses the second one.
        out = str(tmp_path / "run")
        with Session() as session:
            session.run(tiny_spec(name="locked"), out_dir=out)
        run_dir = RunDirectory.open(out)
        run_dir.acquire_lock()  # simulate another live executor (our pid)
        try:
            with Session() as session:
                with pytest.raises(ValueError, match="live process"):
                    session.resume(out)
        finally:
            run_dir.release_lock()
        # a stale lock (dead pid) is stolen: resume proceeds, but the
        # steal is announced with a warning naming the dead pid
        import json as _json

        dead_pid = 2 ** 22 + 12345  # unlikely-live pid
        with open(run_dir._lock_path(), "w") as handle:
            _json.dump({"pid": dead_pid}, handle)
        with pytest.warns(RuntimeWarning, match=f"stale advisory lock.*{dead_pid}"):
            with Session() as session:
                session.resume(out).result()
        assert not os.path.exists(run_dir._lock_path())  # released on settle


class TestCLILifecycle:
    def test_run_out_dir_status_and_resume(self, tmp_path, capsys):
        out = str(tmp_path / "run")
        spec_path = str(tmp_path / "spec.json")
        from repro.api import save_spec

        save_spec(tiny_spec(name="cli-lifecycle"), spec_path)

        assert main(["run", spec_path, "--out-dir", out, "--progress"]) == 0
        output = capsys.readouterr().out
        assert "run directory" in output
        assert "best" in output  # --progress printed per-seed lines

        assert main(["status", out]) == 0
        status_out = capsys.readouterr().out
        assert "finished" in status_out
        assert "done" in status_out
        assert "GA" in status_out and "Random" in status_out

        # resuming a finished run from the CLI is a clean no-op
        assert main(["run", "--resume", out]) == 0
        capsys.readouterr()

    def test_run_quiet_by_default(self, tmp_path, capsys):
        out = str(tmp_path / "run")
        spec_path = str(tmp_path / "spec.json")
        from repro.api import save_spec

        save_spec(tiny_spec(name="cli-quiet"), spec_path)
        assert main(["run", spec_path, "--out-dir", out]) == 0
        output = capsys.readouterr().out
        assert "] sim " not in output  # no per-evaluation progress lines

    def test_cli_validation_errors(self, tmp_path, capsys):
        assert main(["run"]) == 2
        assert "spec file" in capsys.readouterr().err
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert "not a run directory" in capsys.readouterr().err
        out = str(tmp_path / "run")
        with Session() as session:
            session.run(tiny_spec(name="cli-err"), out_dir=out)
        spec_path = str(tmp_path / "spec.json")
        from repro.api import save_spec

        save_spec(tiny_spec(name="cli-err"), spec_path)
        assert main(["run", spec_path, "--resume", out]) == 2
        assert "drop the spec argument" in capsys.readouterr().err
        # reusing a directory that already holds a run: friendly
        # one-liner, not a traceback
        assert main(["run", spec_path, "--out-dir", out]) == 2
        assert "already holds a run" in capsys.readouterr().err


class TestTrainingCheckpointsInRunDir:
    """Durable CircuitVAE runs checkpoint training epochs per cell, and
    resume restores them instead of re-training (PR-5 satellite)."""

    def _vae_spec(self, name):
        return ExperimentSpec(
            name=name,
            task=TaskSpec(circuit_type="adder", n=8),
            methods=(MethodSpec("CircuitVAE", params=_tiny_vae_params()),),
            budget=24,
            seeds=(0,),
            curve_points=1,
        )

    def test_durable_run_writes_train_checkpoints_and_events(self, tmp_path):
        from repro.api import TrainingRoundFinished

        spec = self._vae_spec("train-ckpt")
        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(spec, out_dir=out)
            events = list(handle.events())
            handle.result()
        train_dir = os.path.join(
            RunDirectory.open(out).cell_dir("CircuitVAE", 0), "train"
        )
        files = sorted(os.listdir(train_dir))
        assert "round000.npz" in files and "round000.json" in files
        rounds = [e for e in events if isinstance(e, TrainingRoundFinished)]
        assert rounds and rounds[0].round == 0
        assert rounds[0].epochs > 0 and rounds[0].epochs_skipped == 0
        assert all(set(r.losses) == {"total", "reconstruction", "kl", "cost"}
                   for r in rounds)

    def test_resume_skips_completed_training_epochs(self, tmp_path):
        spec = self._vae_spec("train-ckpt-resume")
        with Session() as session:
            reference = session.run(spec).records["CircuitVAE"][0]
        ref_epochs = reference.telemetry["train_epochs"]
        assert ref_epochs > 0
        assert reference.telemetry["train_epochs_skipped"] == 0

        out = str(tmp_path / "run")
        with Session() as session:
            handle = session.submit(
                spec, out_dir=out, on_event=stop_after_checkpoints(16)
            )
            with pytest.raises(RunInterrupted):
                handle.result()

        with Session() as session:
            result = session.resume(out).result()
        record = result.records["CircuitVAE"][0]
        assert_bit_identical(record, reference)
        # The resumed attempt restored at least the first round's epochs
        # from the interrupted attempt's checkpoints instead of
        # re-training them.
        assert record.telemetry["train_epochs_skipped"] > 0
        assert record.telemetry["train_epochs"] < ref_epochs
        assert (
            record.telemetry["train_epochs"]
            + record.telemetry["train_epochs_skipped"]
            >= ref_epochs
        )
