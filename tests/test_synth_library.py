"""Tests for cell libraries (repro.synth.library)."""

import pytest

from repro.synth import CellLibrary, LIBRARIES, nangate45, scaled_library


@pytest.fixture(scope="module")
def lib():
    return nangate45()


class TestCells:
    def test_all_functions_present(self, lib):
        for function in ("INV", "BUF", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "AOI21"):
            assert lib.variants(function)

    def test_variants_sorted_by_drive(self, lib):
        drives = [c.drive for c in lib.variants("INV")]
        assert drives == sorted(drives)
        assert drives[0] == 1

    def test_delay_monotone_in_load(self, lib):
        cell = lib.cell("NAND2_X1")
        delays = [cell.delay(load, lib.tau_ns) for load in (1.0, 2.0, 4.0, 8.0)]
        assert all(a < b for a, b in zip(delays, delays[1:]))

    def test_upsizing_speeds_up_at_fixed_load(self, lib):
        x1 = lib.cell("AND2_X1")
        x4 = lib.cell("AND2_X4")
        load = 20.0
        assert x4.delay(load, lib.tau_ns) < x1.delay(load, lib.tau_ns)

    def test_upsizing_costs_area_and_cap(self, lib):
        x1, x4 = lib.cell("INV_X1"), lib.cell("INV_X4")
        assert x4.area > x1.area
        assert x4.input_cap > x1.input_cap

    def test_xor_slowest_per_effort(self, lib):
        # XOR has the worst logical effort of the 2-input functions.
        assert (
            lib.cell("XOR2_X1").logical_effort
            > lib.cell("NAND2_X1").logical_effort
        )

    def test_resize_walks_the_ladder(self, lib):
        x1 = lib.cell("INV_X1")
        x2 = lib.resize(x1, +1)
        assert x2.drive == 2
        assert lib.resize(x1, -1) is None
        top = lib.variants("INV")[-1]
        assert lib.resize(top, +1) is None

    def test_unknown_lookups_raise(self, lib):
        with pytest.raises(KeyError):
            lib.cell("FLUXCAP_X1")
        with pytest.raises(KeyError):
            lib.variants("MAJ3")

    def test_num_inputs(self, lib):
        assert lib.cell("INV_X1").num_inputs == 1
        assert lib.cell("AOI21_X1").num_inputs == 3


class TestScaledLibrary:
    def test_8nm_is_smaller_and_faster(self):
        base, scaled = nangate45(), scaled_library("8nm")
        assert scaled.tau_ns < base.tau_ns
        assert scaled.cell("INV_X1").area < base.cell("INV_X1").area
        assert scaled.bit_pitch_um < base.bit_pitch_um

    def test_8nm_shifts_relative_xor_cost(self):
        """The domain-gap ingredient: XOR is relatively cheaper at 8nm."""
        base, scaled = nangate45(), scaled_library("8nm")
        base_ratio = base.cell("XOR2_X1").logical_effort / base.cell("NAND2_X1").logical_effort
        scaled_ratio = (
            scaled.cell("XOR2_X1").logical_effort / scaled.cell("NAND2_X1").logical_effort
        )
        assert scaled_ratio < base_ratio

    def test_unknown_node_raises(self):
        with pytest.raises(ValueError):
            scaled_library("3nm")

    def test_libraries_factory(self):
        libs = LIBRARIES()
        assert set(libs) == {"nangate45", "8nm"}
        assert all(isinstance(v, CellLibrary) for v in libs.values())
