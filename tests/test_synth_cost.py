"""Tests for the scalar cost function (repro.synth.cost)."""

import pytest

from repro.prefix import ripple_carry, sklansky
from repro.synth import CostWeights, cost_from_metrics, nangate45, synthesize


def test_formula_matches_paper_units():
    # omega * 10 * delay_ns + (1 - omega) * area_um2 / 100
    assert cost_from_metrics(area_um2=500, delay_ns=0.4, delay_weight=0.33) == pytest.approx(
        0.33 * 4.0 + 0.67 * 5.0
    )


def test_extremes_isolate_objectives():
    assert cost_from_metrics(100, 1.0, 0.0) == pytest.approx(1.0)  # pure area
    assert cost_from_metrics(100, 1.0, 1.0) == pytest.approx(10.0)  # pure delay


def test_invalid_weight_rejected():
    with pytest.raises(ValueError):
        cost_from_metrics(1, 1, -0.1)
    with pytest.raises(ValueError):
        CostWeights(1.5)


def test_omega_sweep_changes_winner():
    """Low omega favours ripple (area), high omega favours Sklansky (delay)
    — the trade-off that makes the omega sweep meaningful."""
    lib = nangate45()
    ripple = synthesize(ripple_carry(32), lib)
    skl = synthesize(sklansky(32), lib)
    low = CostWeights(0.05)
    high = CostWeights(0.95)
    assert low.cost(ripple) < low.cost(skl)
    assert high.cost(skl) < high.cost(ripple)


def test_cost_weights_repr():
    assert "0.66" in repr(CostWeights(0.66))
