"""Tests for the parallel/persistent/batched evaluation engine (repro.engine)."""

import json

import numpy as np
import pytest

from helpers import unique_random_graphs as unique_graphs

from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec
from repro.baselines import GAConfig, GeneticAlgorithm, RandomSearch
from repro.circuits import adder_task
from repro.engine import (
    EvalBatch,
    EvaluationCache,
    EvaluationEngine,
    EngineSimulator,
    EngineTelemetry,
    SynthesisPool,
    task_fingerprint,
)
from repro.opt import BudgetExhausted, CircuitSimulator, RunRecord
from repro.prefix import sklansky

TASK_SPEC = TaskSpec(circuit_type="adder", n=16, delay_weight=0.66)


def run_serial_grid(factory, task, budget, seeds, method_name):
    """The plain pre-engine reference: one serial simulator per seed."""
    records = []
    for seed in seeds:
        simulator = CircuitSimulator(task, budget=budget)
        try:
            factory(seed).run(simulator, np.random.default_rng(seed))
        except BudgetExhausted:
            pass
        records.append(RunRecord.from_simulator(method_name, seed, simulator))
    return records


def run_session_grid(engine, methods, budget, seeds, parallel_seeds=1):
    """The supported engine path: a Session adopting ``engine``."""
    spec = ExperimentSpec(
        name="engine-grid",
        task=TASK_SPEC,
        methods=methods,
        budget=budget,
        seeds=tuple(seeds),
        curve_points=min(8, budget),
    )
    with Session(engine=engine, parallel_seeds=parallel_seeds) as session:
        return session.run(spec)


@pytest.fixture
def task():
    return adder_task(16, 0.66)


class TestTaskFingerprint:
    def test_stable_across_instances(self):
        assert task_fingerprint(adder_task(16, 0.66)) == task_fingerprint(
            adder_task(16, 0.66)
        )

    def test_differs_by_width_and_type(self):
        fingerprints = {
            task_fingerprint(adder_task(8, 0.66)),
            task_fingerprint(adder_task(16, 0.66)),
        }
        assert len(fingerprints) == 2

    def test_omega_excluded_so_sweeps_share_synthesis(self):
        # Cost is recomputed at serve time, so delay-weight sweeps reuse
        # each other's synthesis results.
        assert task_fingerprint(adder_task(16, 0.33)) == task_fingerprint(
            adder_task(16, 0.95)
        )


class TestEvaluationCache:
    def test_memory_roundtrip(self, task):
        cache = EvaluationCache()
        fp = task_fingerprint(task)
        key = sklansky(16).key()
        assert cache.get(fp, key) is None
        cache.put(fp, key, (12.5, 0.75))
        assert cache.get(fp, key) == (12.5, 0.75)

    def test_disk_roundtrip_across_instances(self, task, tmp_path):
        fp = task_fingerprint(task)
        key = sklansky(16).key()
        EvaluationCache(cache_dir=str(tmp_path)).put(fp, key, (12.5, 0.75))
        fresh = EvaluationCache(cache_dir=str(tmp_path))
        metrics, origin = fresh.get_with_origin(fp, key)
        assert metrics == (12.5, 0.75)
        assert origin == "disk"
        # Second hit is served from the memory front.
        assert fresh.get_with_origin(fp, key)[1] == "memory"

    def test_truncated_trailing_line_is_skipped_with_warning(self, task, tmp_path):
        fp = task_fingerprint(task)
        key = sklansky(16).key()
        cache = EvaluationCache(cache_dir=str(tmp_path))
        cache.put(fp, key, (1.0, 2.0))
        with open(tmp_path / f"{fp}.jsonl", "a") as handle:
            handle.write('{"k": "dead')  # crashed writer
        with pytest.warns(RuntimeWarning, match="corrupt evaluation-cache line"):
            assert EvaluationCache(cache_dir=str(tmp_path)).get(fp, key) == (1.0, 2.0)

    def test_garbage_lines_are_skipped_with_warning(self, task, tmp_path):
        # Bit rot / hand edits anywhere in a shard must not crash the
        # engine: every malformed shape warns and is skipped, and the
        # surviving records still load.
        fp = task_fingerprint(task)
        good = unique_graphs(16, 2)
        cache = EvaluationCache(cache_dir=str(tmp_path))
        cache.put(fp, good[0].key(), (1.0, 2.0))
        path = tmp_path / f"{fp}.jsonl"
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"k": "zz-not-hex", "a": 1, "d": 2}\n')  # bad key hex
            handle.write('{"a": 1.0, "d": 2.0}\n')  # missing key field
            handle.write('{"k": "00", "a": "NaN-ish", "d": []}\n')  # bad types
            handle.write("\n")  # blank lines stay silent
        cache.put(fp, good[1].key(), (3.0, 4.0))
        with pytest.warns(RuntimeWarning, match="corrupt evaluation-cache line"):
            fresh = EvaluationCache(cache_dir=str(tmp_path))
            assert fresh.get(fp, good[0].key()) == (1.0, 2.0)
        assert fresh.get(fp, good[1].key()) == (3.0, 4.0)

    def test_corrupt_line_warning_names_shard_and_line(self, task, tmp_path):
        # With many shards on disk, "a line was corrupt" is useless
        # without saying *which* line of *which* shard: the warning must
        # carry the path and the 1-based line number.
        fp = task_fingerprint(task)
        good = unique_graphs(16, 2)
        cache = EvaluationCache(cache_dir=str(tmp_path))
        cache.put(fp, good[0].key(), (1.0, 2.0))
        cache.put(fp, good[1].key(), (3.0, 4.0))
        path = tmp_path / f"{fp}.jsonl"
        with open(path, "a") as handle:
            handle.write("rotten line\n")  # line 3
        with pytest.warns(RuntimeWarning, match=f"{fp}.jsonl:3"):
            EvaluationCache(cache_dir=str(tmp_path)).get(fp, good[0].key())

    def test_corrupt_append_line_number_counts_from_shard_start(
        self, task, tmp_path
    ):
        # A long-lived reader ingests external appends incrementally; a
        # corrupt appended line must still be numbered from the start of
        # the shard, not from the reader's resume position.
        fp = task_fingerprint(task)
        good = unique_graphs(16, 3)
        writer = EvaluationCache(cache_dir=str(tmp_path))
        writer.put(fp, good[0].key(), (1.0, 2.0))
        writer.put(fp, good[1].key(), (3.0, 4.0))
        reader = EvaluationCache(cache_dir=str(tmp_path))
        assert reader.get(fp, good[0].key()) == (1.0, 2.0)
        path = tmp_path / f"{fp}.jsonl"
        with open(path, "a") as handle:
            handle.write("rotten line\n")  # line 3, appended externally
        writer.put(fp, good[2].key(), (5.0, 6.0))
        with pytest.warns(RuntimeWarning, match=f"{fp}.jsonl:3"):
            assert reader.get(fp, good[2].key()) == (5.0, 6.0)

    def test_duplicate_keys_keep_latest_record(self, task, tmp_path):
        # Append-only shards are last-writer-wins; a reload must resolve
        # duplicates to the newest record (both served and re-persisted).
        fp = task_fingerprint(task)
        key = sklansky(16).key()
        cache = EvaluationCache(cache_dir=str(tmp_path))
        cache.put(fp, key, (1.0, 2.0))
        cache.put(fp, key, (5.0, 6.0))
        cache.put(fp, key, (9.0, 10.0))
        fresh = EvaluationCache(cache_dir=str(tmp_path))
        assert fresh.get(fp, key) == (9.0, 10.0)
        # The LRU-evicted reload path must also resolve to the latest.
        evicting = EvaluationCache(cache_dir=str(tmp_path), memory_limit=1)
        other = unique_graphs(16, 1)[0]
        evicting.put(fp, other.key(), (0.0, 0.0))  # evicts the loaded entry
        assert evicting.get(fp, key) == (9.0, 10.0)

    def test_external_append_is_read_incrementally(self, task, tmp_path, monkeypatch):
        # A long-lived reader (the serve daemon) must not re-parse the
        # whole shard every time another process appends: only the tail
        # past its per-shard read position gets parsed.
        fp = task_fingerprint(task)
        graphs = unique_graphs(16, 6)
        writer = EvaluationCache(cache_dir=str(tmp_path))
        for i, graph in enumerate(graphs[:4]):
            writer.put(fp, graph.key(), (float(i), 1.0))
        reader = EvaluationCache(cache_dir=str(tmp_path))
        assert reader.get(fp, graphs[0].key()) == (0.0, 1.0)
        # another process appends two records behind the reader's back
        writer.put(fp, graphs[4].key(), (40.0, 1.0))
        writer.put(fp, graphs[5].key(), (50.0, 1.0))
        parsed = []
        real = EvaluationCache._parse_line
        monkeypatch.setattr(
            EvaluationCache,
            "_parse_line",
            staticmethod(
                lambda raw, where="?": parsed.append(raw) or real(raw, where)
            ),
        )
        assert reader.get(fp, graphs[5].key()) == (50.0, 1.0)
        assert len(parsed) == 2  # only the appended tail, not the 4 old lines
        parsed.clear()
        assert reader.get(fp, graphs[4].key()) == (40.0, 1.0)
        assert parsed == []  # second external entry already ingested

    def test_own_appends_advance_the_read_position(self, task, tmp_path, monkeypatch):
        # put() already knows the bytes it wrote; a subsequent external
        # append must not force a re-parse of our own records.
        fp = task_fingerprint(task)
        graphs = unique_graphs(16, 3)
        cache = EvaluationCache(cache_dir=str(tmp_path))
        cache.put(fp, graphs[0].key(), (1.0, 1.0))
        cache.put(fp, graphs[1].key(), (2.0, 1.0))
        EvaluationCache(cache_dir=str(tmp_path)).put(fp, graphs[2].key(), (3.0, 1.0))
        parsed = []
        real = EvaluationCache._parse_line
        monkeypatch.setattr(
            EvaluationCache,
            "_parse_line",
            staticmethod(
                lambda raw, where="?": parsed.append(raw) or real(raw, where)
            ),
        )
        assert cache.get(fp, graphs[2].key()) == (3.0, 1.0)
        assert len(parsed) == 1  # the foreign record only

    def test_shard_shrink_triggers_full_reload(self, task, tmp_path):
        # Compaction rewrites a shard shorter; every remembered offset
        # and read position is void, so the reader rescans from byte 0.
        fp = task_fingerprint(task)
        old, new = (g.key() for g in unique_graphs(16, 2))
        cache = EvaluationCache(cache_dir=str(tmp_path))
        for round_index in range(4):
            cache.put(fp, old, (float(round_index), 1.0))
        reader = EvaluationCache(cache_dir=str(tmp_path))
        assert reader.get(fp, old) == (3.0, 1.0)
        # a compactor replaces the shard with one record for a new key
        path = tmp_path / f"{fp}.jsonl"
        path.write_text(
            json.dumps({"k": new.hex(), "a": 7.0, "d": 8.0}) + "\n"
        )
        assert reader.get(fp, new) == (7.0, 8.0)

    def test_lru_eviction_bounds_memory(self, task):
        cache = EvaluationCache(memory_limit=3)
        fp = task_fingerprint(task)
        for i, g in enumerate(unique_graphs(16, 5)):
            cache.put(fp, g.key(), (float(i), 1.0))
        assert len(cache) == 3

    def test_evicted_entry_is_reread_from_disk(self, task, tmp_path):
        # Eviction from the LRU front must not orphan disk records — a
        # warm rerun has to stay at zero synthesis even past the limit.
        cache = EvaluationCache(cache_dir=str(tmp_path), memory_limit=2)
        fp = task_fingerprint(task)
        graphs = unique_graphs(16, 4)
        for i, g in enumerate(graphs):
            cache.put(fp, g.key(), (float(i), 1.0))
        assert len(cache) == 2  # first two evicted from memory...
        metrics, origin = cache.get_with_origin(fp, graphs[0].key())
        assert metrics == (0.0, 1.0)  # ...but still served
        assert origin == "disk"


class TestPool:
    def test_matches_serial_synthesis(self, task):
        graphs = unique_graphs(16, 6)
        serial = [(task.synthesize(g).area_um2, task.synthesize(g).delay_ns) for g in graphs]
        with SynthesisPool(workers=2) as pool:
            pooled = pool.synthesize_batch(task, graphs)
        assert pooled == serial

    def test_serial_fallback(self, task):
        pool = SynthesisPool(workers=1)
        graphs = unique_graphs(16, 2)
        assert len(pool.synthesize_batch(task, graphs)) == 2
        assert not pool.parallel


class TestBudgetAccountingUnderBatches:
    def test_no_overspend_on_oversized_batch(self, task):
        graphs = unique_graphs(16, 12)
        sim = EngineSimulator(task, budget=5, engine=EvaluationEngine(workers=2))
        out = sim.query_many(graphs)
        assert sim.num_simulations == 5
        assert len(out) == 5
        assert [e.sim_index for e in sim.history] == [1, 2, 3, 4, 5]
        assert sim.telemetry.budget_refusals == 7

    def test_in_batch_duplicates_charge_once(self, task):
        graphs = unique_graphs(16, 4)
        batch = graphs + [graphs[0], graphs[2]] + graphs[:2]
        sim = EngineSimulator(task, budget=None, engine=EvaluationEngine(workers=2))
        out = sim.query_many(batch)
        assert sim.num_simulations == 4
        assert len(out) == len(batch)  # duplicates served, not skipped
        assert out[4] is out[0] and out[5] is out[2]

    def test_duplicate_after_exhaustion_is_served(self, task):
        graphs = unique_graphs(16, 6)
        batch = graphs + [graphs[1]]  # dup lands after the budget runs out
        sim = EngineSimulator(task, budget=3, engine=EvaluationEngine())
        out = sim.query_many(batch)
        assert sim.num_simulations == 3
        assert out[-1] is out[1]

    def test_scalar_query_raises_when_exhausted(self, task):
        graphs = unique_graphs(16, 3)
        sim = EngineSimulator(task, budget=2, engine=EvaluationEngine())
        sim.query(graphs[0])
        sim.query(graphs[1])
        with pytest.raises(BudgetExhausted):
            sim.query(graphs[2])
        assert sim.query(graphs[0]).sim_index == 1  # cached hit still served

    def test_refusal_mid_batch_after_in_batch_duplicates(self, task):
        # Duplicates of already-scheduled designs are free: they must not
        # advance the budget cursor, so the refusal boundary lands on the
        # fourth *unique* design, not the fourth slot.
        g = unique_graphs(16, 4)
        batch = [g[0], g[0], g[1], g[1], g[2], g[3]]
        sim = EngineSimulator(task, budget=3, engine=EvaluationEngine())
        out = sim.query_plan(batch)
        assert sim.num_simulations == 3
        assert out[5] is None  # g[3] alone is refused
        assert [e is not None for e in out[:5]] == [True] * 5
        assert out[1] is out[0] and out[3] is out[2]
        assert sim.telemetry.budget_refusals == 1

    def test_refusal_on_exact_last_budget_unit(self, task):
        # budget=4 with 5 uniques: the fourth consumes the final unit in
        # the same batch, the fifth is refused — no off-by-one overspend.
        g = unique_graphs(16, 5)
        sim = EngineSimulator(task, budget=4, engine=EvaluationEngine())
        out = sim.query_plan(g)
        assert sim.num_simulations == 4
        assert [e.sim_index for e in out[:4]] == [1, 2, 3, 4]
        assert out[4] is None
        assert sim.telemetry.budget_refusals == 1
        # the exhausted simulator still serves memo hits for free
        assert sim.query_plan([g[0]])[0] is out[0]


class TestSerialEquivalence:
    def test_plain_batch_equivalence(self, task):
        graphs = unique_graphs(16, 10)
        batch = graphs + [graphs[0], graphs[3]]
        serial = CircuitSimulator(task, budget=7)
        pooled = EngineSimulator(task, budget=7, engine=EvaluationEngine(workers=4))
        out_serial = serial.query_many(batch)
        out_pooled = pooled.query_many(batch)
        assert [e.cost for e in out_serial] == [e.cost for e in out_pooled]
        assert [e.sim_index for e in serial.history] == [
            e.sim_index for e in pooled.history
        ]
        np.testing.assert_array_equal(
            serial.best_cost_curve(), pooled.best_cost_curve()
        )

    def test_seed_grid_curves_identical(self, task, tmp_path):
        # The acceptance check: a plain serial seed grid and an
        # engine-backed Session run on a 16-bit adder produce identical
        # best_cost_curve arrays per (method, seed).
        from repro.utils.rng import seed_sequence

        factories = {
            "GA": lambda seed: GeneticAlgorithm(GAConfig(population_size=10)),
            "Random": lambda seed: RandomSearch(),
        }
        seeds = seed_sequence(0, 2)
        serial = {
            name: run_serial_grid(factory, task, 14, seeds, name)
            for name, factory in factories.items()
        }
        with EvaluationEngine(cache_dir=str(tmp_path), workers=2) as engine:
            engined = run_session_grid(
                engine,
                (
                    MethodSpec("GA", params={"population_size": 10}),
                    MethodSpec("Random"),
                ),
                budget=14,
                seeds=seeds,
            ).records
        for method in factories:
            for record_s, record_e in zip(serial[method], engined[method]):
                assert record_s.seed == record_e.seed
                np.testing.assert_array_equal(
                    record_s.best_curve(), record_e.best_curve()
                )

    def test_concurrent_threads_synthesize_each_design_once(self, task):
        # In-flight dedup: threads that miss the cache on the same designs
        # must share one synthesis, not race to duplicate it.
        import threading

        graphs = unique_graphs(16, 4)
        with EvaluationEngine(workers=1) as engine:
            barrier = threading.Barrier(2)

            def worker():
                barrier.wait()
                engine.evaluate(task, graphs)

            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert engine.telemetry.synth_calls == len(graphs)

    def test_waiter_recovers_when_owner_synthesis_fails(self, task):
        # If the owning thread's synthesis raises, exactly one waiter must
        # reclaim the in-flight slot and produce the result.
        import threading

        graphs = unique_graphs(16, 1)
        engine = EvaluationEngine(workers=1)
        real_batch = engine.pool.synthesize_batch
        fail_once = threading.Event()

        def flaky_batch(task_, graphs_):
            if not fail_once.is_set():
                fail_once.set()
                raise RuntimeError("injected synthesis failure")
            return real_batch(task_, graphs_)

        engine.pool.synthesize_batch = flaky_batch
        barrier = threading.Barrier(2)
        outcomes = []

        def worker():
            barrier.wait()
            try:
                outcomes.append(engine.evaluate(task, graphs)[0])
            except RuntimeError:
                outcomes.append("failed")

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One thread saw the injected failure OR both succeeded (if the
        # failing call happened first and the survivor re-synthesized);
        # either way at least one real evaluation came back and nothing
        # deadlocked.
        assert any(isinstance(o, tuple) for o in outcomes), outcomes
        assert engine._inflight == {}  # registry fully drained

    def test_unique_random_graphs_rejects_impossible_count(self):
        from repro.prefix import unique_random_graphs

        with pytest.raises(ValueError):
            unique_random_graphs(2, 3, np.random.default_rng(0))

    def test_parallel_seeds_identical_records(self, task):
        method = MethodSpec("GA", params={"population_size": 8})
        with EvaluationEngine(workers=2) as engine:
            serial_seeds = run_session_grid(
                engine, (method,), budget=12, seeds=[0, 1, 2]
            ).records["GA"]
        with EvaluationEngine(workers=2) as engine:
            threaded = run_session_grid(
                engine, (method,), budget=12, seeds=[0, 1, 2], parallel_seeds=3
            ).records["GA"]
        for record_s, record_t in zip(serial_seeds, threaded):
            np.testing.assert_array_equal(record_s.costs, record_t.costs)


class TestPersistentReuse:
    def test_warm_disk_cache_performs_zero_synthesis(self, task, tmp_path):
        from repro.utils.rng import seed_sequence

        method = MethodSpec("GA", params={"population_size": 10})
        seeds = seed_sequence(0, 2)
        with EvaluationEngine(cache_dir=str(tmp_path), workers=1) as engine:
            cold = run_session_grid(engine, (method,), 12, seeds).records
            assert engine.telemetry.synth_calls > 0
        # Fresh process-equivalent: new engine, same cache directory.
        with EvaluationEngine(cache_dir=str(tmp_path), workers=1) as engine:
            warm = run_session_grid(engine, (method,), 12, seeds).records
            assert engine.telemetry.synth_calls == 0
            assert engine.telemetry.disk_hits > 0
        for record_c, record_w in zip(cold["GA"], warm["GA"]):
            np.testing.assert_array_equal(record_c.costs, record_w.costs)

    def test_omega_sweep_shares_synthesis(self, tmp_path):
        graphs = unique_graphs(16, 4)
        with EvaluationEngine(cache_dir=str(tmp_path)) as engine:
            engine.simulator(adder_task(16, 0.33)).query_many(graphs)
            other = engine.simulator(adder_task(16, 0.95))
            other.query_many(graphs)
            assert other.telemetry.synth_calls == 0
            # ...but the cost is recomputed under the new omega.
            direct = CircuitSimulator(adder_task(16, 0.95)).query(graphs[0])
            assert other.history[0].cost == pytest.approx(direct.cost)


class TestFuturesAPI:
    def test_submit_gather_resolves_everything(self, task):
        sim = EngineSimulator(task, budget=3, engine=EvaluationEngine())
        graphs = unique_graphs(16, 5)
        batch = EvalBatch(sim)
        futures = [batch.submit(g) for g in graphs]
        fulfilled = batch.gather()
        assert len(fulfilled) == 3
        assert all(f.done for f in futures)
        assert [f.refused for f in futures] == [False] * 3 + [True] * 2
        assert futures[0].result().sim_index == 1
        with pytest.raises(BudgetExhausted):
            futures[4].result()

    def test_works_against_plain_simulator(self, task):
        batch = EvalBatch(CircuitSimulator(task, budget=2))
        for g in unique_graphs(16, 4):
            batch.submit(g)
        assert len(batch.gather()) == 2

    def test_unresolved_future_raises(self, task):
        batch = EvalBatch(CircuitSimulator(task))
        future = batch.submit(sklansky(16))
        with pytest.raises(RuntimeError):
            future.result()


class TestTelemetry:
    def test_counters_and_record_snapshot(self, task):
        with EvaluationEngine() as engine:
            records = run_session_grid(
                engine, (MethodSpec("Random"),), 10, [0]
            ).records["Random"]
        telemetry = records[0].telemetry
        assert telemetry is not None
        assert telemetry["synth_calls"] == 10
        assert telemetry["queries"] >= 10
        assert telemetry["stage_seconds"].get("synthesis", 0) > 0
        assert "proposal" in telemetry["stage_seconds"]
        assert 0.0 <= telemetry["hit_rate"] <= 1.0

    def test_vectorized_batches_are_attributed(self, task):
        # A GA generation is a population batch: the engine must route it
        # through the vectorized fast path and say so in telemetry.
        with EvaluationEngine() as engine:
            records = run_session_grid(
                engine,
                (MethodSpec("GA", params={"population_size": 10}),),
                12,
                [0],
            ).records["GA"]
        telemetry = records[0].telemetry
        assert telemetry["vector_batches"] >= 1
        assert telemetry["vector_designs"] >= 10
        assert telemetry["vector_designs"] <= telemetry["synth_calls"]
        # Population batches land in one of the vectorized stages: the
        # delta-aware incremental pipeline when its guards admit the
        # batch, the plain vectorized flow otherwise.
        stages = telemetry["stage_seconds"]
        assert (
            stages.get("synthesis_vectorized", 0)
            + stages.get("synthesis_incremental", 0)
        ) > 0
        # The split stages partition total synthesis wall-clock.
        total = stages["synthesis"]
        split = (
            stages.get("synthesis_vectorized", 0.0)
            + stages.get("synthesis_incremental", 0.0)
            + stages.get("synthesis_scalar", 0.0)
        )
        assert split <= total + 1e-6

    def test_vectorized_fast_path_can_be_disabled(self, task, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZED_EVAL", "0")
        graphs = unique_graphs(16, 4)
        with EvaluationEngine() as engine:
            simulator = engine.simulator(task)
            simulator.query_many(graphs)
            assert simulator.telemetry.vector_batches == 0
            assert (
                simulator.telemetry.stage_seconds.get("synthesis_scalar", 0) > 0
            )

    def test_plain_simulator_records_no_telemetry(self, task):
        records = run_serial_grid(
            lambda seed: RandomSearch(), task, 5, [0], "Random"
        )
        assert records[0].telemetry is None

    def test_merge_and_dict(self):
        a, b = EngineTelemetry(), EngineTelemetry()
        a.add("synth_calls", 3)
        b.add("synth_calls", 2)
        b.add_stage_time("synthesis", 1.5)
        a.merge(b)
        assert a.synth_calls == 5
        assert a.as_dict()["stage_seconds"]["synthesis"] == pytest.approx(1.5)

    def test_records_io_roundtrip_with_telemetry(self, task, tmp_path):
        from repro.opt import load_records, save_records

        with EvaluationEngine() as engine:
            records = run_session_grid(
                engine, (MethodSpec("Random"),), 5, [0]
            ).records["Random"]
        path = str(tmp_path / "records.json")
        save_records(path, records)
        loaded = load_records(path)
        assert loaded[0].telemetry["synth_calls"] == records[0].telemetry["synth_calls"]
