"""Tests for task definitions (repro.circuits)."""

import pytest

from repro.circuits import (
    CircuitTask,
    adder_task,
    datapath_io_timing,
    gray_to_binary_task,
    realistic_adder_task,
)
from repro.prefix import sklansky
from repro.synth import nangate45


class TestAdderTask:
    def test_synthesize_and_cost(self):
        task = adder_task(8, 0.66)
        result = task.synthesize(sklansky(8))
        assert task.cost(result) > 0

    def test_width_mismatch_rejected(self):
        task = adder_task(8, 0.5)
        with pytest.raises(ValueError):
            task.synthesize(sklansky(16))

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitTask("bad", n=1, delay_weight=0.5)
        with pytest.raises(ValueError):
            CircuitTask("bad", n=8, delay_weight=1.5)
        with pytest.raises(ValueError):
            CircuitTask("bad", n=8, delay_weight=0.5, circuit_type="multiplier")

    def test_with_delay_weight(self):
        task = adder_task(8, 0.33)
        shifted = task.with_delay_weight(0.95)
        assert shifted.delay_weight == 0.95
        assert shifted.n == task.n
        assert "w0.95" in shifted.name

    def test_cost_scales_with_omega(self):
        result = adder_task(8, 0.5).synthesize(sklansky(8))
        low = adder_task(8, 0.05).cost(result)
        high = adder_task(8, 0.95).cost(result)
        # Same circuit, different omega -> different scalar costs.
        assert low != high


class TestDatapathTiming:
    @pytest.mark.parametrize("profile", ["late-msb", "late-lsb", "bowl"])
    def test_profiles_cover_all_bits(self, profile):
        timing = datapath_io_timing(8, profile)
        for i in range(8):
            assert f"a[{i}]" in timing.input_arrival
            assert f"s[{i}]" in timing.output_margin
        assert "cout" in timing.output_margin

    def test_late_msb_shape(self):
        timing = datapath_io_timing(8, "late-msb", skew_ns=0.2)
        assert timing.arrival("a[7]") == pytest.approx(0.2)
        assert timing.arrival("a[0]") == pytest.approx(0.0)

    def test_late_lsb_is_mirror(self):
        msb = datapath_io_timing(8, "late-msb")
        lsb = datapath_io_timing(8, "late-lsb")
        assert msb.arrival("a[7]") == pytest.approx(lsb.arrival("a[0]"))

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            datapath_io_timing(8, "zigzag")

    def test_realistic_task_uses_8nm(self):
        task = realistic_adder_task(n=16)
        assert task.library.name.startswith("scaled")
        assert task.io_timing.input_arrival  # nonuniform

    def test_timing_affects_synthesis(self):
        flat = adder_task(16, 0.6)
        skewed = CircuitTask(
            "skewed", n=16, delay_weight=0.6,
            library=nangate45(), io_timing=datapath_io_timing(16, "late-msb", 0.3),
        )
        g = sklansky(16)
        assert skewed.synthesize(g).delay_ns > flat.synthesize(g).delay_ns


class TestGrayTask:
    def test_defaults_match_paper(self):
        task = gray_to_binary_task()
        assert task.n == 26
        assert task.delay_weight == 0.6
        assert task.circuit_type == "gray"

    def test_synthesizes(self):
        task = gray_to_binary_task(n=8)
        result = task.synthesize(sklansky(8))
        assert result.cell_counts == {"XOR2": result.num_gates} or "BUF" in result.cell_counts
