"""Tests for graph persistence (repro.prefix.io)."""

import json

import numpy as np
import pytest

from repro.prefix import (
    graph_from_dict,
    graph_to_dict,
    load_designs,
    random_graph,
    save_designs,
    sklansky,
)


class TestDictRoundtrip:
    def test_roundtrip_classical(self):
        g = sklansky(16)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            g = random_graph(12, rng, rng.random() * 0.6)
            assert graph_from_dict(graph_to_dict(g)) == g

    def test_compact_representation(self):
        # Ripple has no free nodes beyond the forced cells.
        from repro.prefix import ripple_carry

        payload = graph_to_dict(ripple_carry(8))
        assert payload["nodes"] == []

    def test_version_checked(self):
        payload = graph_to_dict(sklansky(8))
        payload["version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(payload)

    def test_out_of_range_node_rejected(self):
        payload = {"version": 1, "n": 8, "nodes": [[2, 5]]}
        with pytest.raises(ValueError):
            graph_from_dict(payload)

    def test_illegal_design_rejected(self):
        # (5, 2) without its lower parent (4, 2) present... build a payload
        # whose nodes violate legality: (5,2) needs (4,2) [upper is (5,5)].
        payload = {"version": 1, "n": 8, "nodes": [[5, 2]]}
        with pytest.raises(ValueError):
            graph_from_dict(payload)


class TestDesignLibrary:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "designs.json")
        designs = [
            (sklansky(8), {"cost": 4.5, "task": "adder8"}),
            (random_graph(8, np.random.default_rng(1), 0.3), {"cost": 4.2}),
        ]
        save_designs(path, designs)
        loaded = load_designs(path)
        assert len(loaded) == 2
        assert loaded[0][0] == designs[0][0]
        assert loaded[0][1]["task"] == "adder8"

    def test_tampered_file_rejected(self, tmp_path):
        path = str(tmp_path / "designs.json")
        save_designs(path, [(sklansky(8), {})])
        with open(path) as fh:
            payload = json.load(fh)
        # (6, 1) in Sklansky-8 lacks its lower parent (3, 1) -> illegal.
        payload["designs"][0]["graph"]["nodes"].append([6, 1])
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError):
            load_designs(path)

    def test_wrong_library_version(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"version": 2, "designs": []}, fh)
        with pytest.raises(ValueError):
            load_designs(path)
