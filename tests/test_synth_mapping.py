"""Tests for technology mapping (repro.synth.mapping).

The crucial property: the mapped netlist must compute *exactly* the function
the prefix graph denotes, for every graph and both circuit types.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix import gray_encode, random_graph, ripple_carry, sklansky
from repro.synth import map_adder, map_gray_to_binary, map_prefix_graph, nangate45


@pytest.fixture(scope="module")
def lib():
    return nangate45()


def adder_io(n, a, b):
    bits = {}
    for i in range(n):
        bits[f"a[{i}]"] = bool((a >> i) & 1)
        bits[f"b[{i}]"] = bool((b >> i) & 1)
    return bits


def read_sum(outputs, n):
    value = 0
    for i in range(n):
        value |= int(outputs[f"s[{i}]"]) << i
    return value, outputs["cout"]


class TestAdderMapping:
    @pytest.mark.parametrize("style", ["aoi", "andor"])
    def test_netlist_adds_exhaustive_4bit(self, lib, style):
        nl = map_adder(sklansky(4), lib, style=style)
        for a in range(16):
            for b in range(16):
                s, cout = read_sum(nl.evaluate(adder_io(4, a, b)), 4)
                assert s == (a + b) & 0xF
                assert cout == bool((a + b) >> 4)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_property_random_graphs_map_correctly(self, lib, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(8, rng, float(rng.random() * 0.6))
        nl = map_adder(g, lib)
        for _ in range(12):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            s, cout = read_sum(nl.evaluate(adder_io(8, a, b)), 8)
            assert s == (a + b) & 0xFF
            assert cout == bool((a + b) >> 8)

    def test_aoi_style_uses_aoi_cells(self, lib):
        counts = map_adder(sklansky(8), lib, style="aoi").count_by_function()
        assert counts.get("AOI21", 0) > 0
        assert counts.get("OR2", 0) == 0

    def test_andor_style_uses_or_cells(self, lib):
        counts = map_adder(sklansky(8), lib, style="andor").count_by_function()
        assert counts.get("OR2", 0) > 0
        assert counts.get("AOI21", 0) == 0

    def test_output_column_propagate_elided(self, lib):
        """Spans with lsb 0 never need group-propagate: ripple's netlist
        must contain exactly n XOR leaves + (n-1) sum XORs and n AND leaves,
        with no extra propagate ANDs."""
        n = 8
        nl = map_adder(ripple_carry(n), lib)
        counts = nl.count_by_function()
        assert counts["XOR2"] == n + (n - 1)
        assert counts["AND2"] == n  # leaf generates only

    def test_mapping_deterministic(self, lib):
        a = map_adder(sklansky(8), lib)
        b = map_adder(sklansky(8), lib)
        assert a.to_verilog() == b.to_verilog()

    def test_width_one(self, lib):
        nl = map_adder(ripple_carry(1), lib)
        out = nl.evaluate({"a[0]": 1, "b[0]": 1})
        assert out["s[0]"] is False and out["cout"] is True


class TestGrayMapping:
    def test_only_xor_cells(self, lib):
        counts = map_gray_to_binary(sklansky(8), lib).count_by_function()
        assert set(counts) == {"XOR2"}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_property_decodes_gray(self, lib, seed):
        rng = np.random.default_rng(seed)
        n = 7
        g = random_graph(n, rng, float(rng.random() * 0.5))
        nl = map_gray_to_binary(g, lib)
        for _ in range(10):
            value = int(rng.integers(2 ** n))
            gray = int(gray_encode(np.array([value], dtype=np.uint64))[0])
            inputs = {f"gray[{i}]": bool((gray >> i) & 1) for i in range(n)}
            outputs = nl.evaluate(inputs)
            decoded = sum(int(outputs[f"bin[{i}]"]) << i for i in range(n))
            assert decoded == value


class TestDispatch:
    def test_map_prefix_graph_dispatch(self, lib):
        assert map_prefix_graph(sklansky(4), lib, "adder").primary_outputs
        assert map_prefix_graph(sklansky(4), lib, "gray").primary_outputs
        with pytest.raises(ValueError):
            map_prefix_graph(sklansky(4), lib, "multiplier")
