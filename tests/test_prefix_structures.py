"""Tests for classical prefix structures (repro.prefix.structures)."""

import numpy as np
import pytest

from repro.prefix import (
    STRUCTURES,
    brent_kung,
    check_adder,
    check_gray_to_binary,
    han_carlson,
    kogge_stone,
    ladner_fischer,
    make_structure,
    max_fanout,
    ripple_carry,
    sklansky,
)

WIDTHS = [1, 2, 3, 4, 7, 8, 13, 16, 26, 31, 32, 64]


@pytest.mark.parametrize("name", sorted(STRUCTURES))
@pytest.mark.parametrize("n", WIDTHS)
def test_structures_are_legal(name, n):
    g = make_structure(name, n)
    assert g.n == n
    assert g.is_legal()


@pytest.mark.parametrize("name", sorted(STRUCTURES))
@pytest.mark.parametrize("n", [2, 8, 16, 31, 64])
def test_structures_add_correctly(name, n):
    rng = np.random.default_rng(hash(name) % 2 ** 32)
    assert check_adder(make_structure(name, n), rng, trials=64)


@pytest.mark.parametrize("name", sorted(STRUCTURES))
def test_structures_convert_gray_correctly(name):
    rng = np.random.default_rng(0)
    assert check_gray_to_binary(make_structure(name, 26), rng, trials=64)


class TestKnownProperties:
    def test_ripple_minimal_nodes_max_depth(self):
        g = ripple_carry(16)
        assert g.node_count() == 15
        assert g.depth() == 15

    def test_sklansky_depth_and_nodes(self):
        g = sklansky(16)
        assert g.depth() == 4  # ceil(log2 16)
        # Sklansky has exactly (n/2) log2(n) operators for power-of-2 n.
        assert g.node_count() == 8 * 4

    def test_sklansky_has_high_fanout(self):
        assert max_fanout(sklansky(32)) >= 32 // 2 // 2

    def test_kogge_stone_node_count(self):
        # KS: sum over levels t of (n - 2^t + ... ) -> n*log2(n) - n + 1 for 2^k.
        g = kogge_stone(16)
        assert g.depth() == 4
        assert g.node_count() == 16 * 4 - 16 + 1

    def test_brent_kung_depth(self):
        # BK depth is 2*log2(n) - 2 for power-of-2 n (n >= 4).
        assert brent_kung(16).depth() == 2 * 4 - 2
        assert brent_kung(64).depth() == 2 * 6 - 2

    def test_brent_kung_sparse(self):
        # BK uses ~2n - log - 2 nodes, far fewer than KS.
        assert brent_kung(64).node_count() < kogge_stone(64).node_count() / 2

    def test_han_carlson_between_bk_and_ks(self):
        hc = han_carlson(32).node_count()
        assert brent_kung(32).node_count() < hc < kogge_stone(32).node_count()

    def test_han_carlson_depth_one_more_than_ks(self):
        assert han_carlson(32).depth() == kogge_stone(32).depth() + 1

    def test_ladner_fischer_fanout_below_sklansky(self):
        assert max_fanout(ladner_fischer(32)) <= max_fanout(sklansky(32))

    def test_unknown_structure_raises(self):
        with pytest.raises(KeyError):
            make_structure("carry-lookahead-9000", 8)

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            ripple_carry(0)

    def test_structures_distinct_at_16_bits(self):
        graphs = [make_structure(name, 16) for name in sorted(STRUCTURES)]
        keys = {g.key() for g in graphs}
        assert len(keys) == len(graphs)
