"""Tests for the commercial-tool emulation (repro.synth.commercial)."""

import pytest

from repro.prefix import sklansky
from repro.synth import CommercialTool, nangate45, scaled_library, synthesize


@pytest.fixture(scope="module")
def tool():
    return CommercialTool(scaled_library("8nm"))


def test_domain_gap_exists(tool):
    """The commercial evaluation differs from the search-time flow — the
    premise of the Fig. 6 experiment."""
    graph = sklansky(16)
    search_flow = synthesize(graph, scaled_library("8nm"))
    commercial = tool.evaluate(graph)
    assert commercial.delay_ns != pytest.approx(search_flow.delay_ns, rel=1e-6)


def test_commercial_is_no_slower(tool):
    """Higher effort + both mapping styles: the tool's result should not be
    slower than the default flow on the same graph."""
    graph = sklansky(16)
    search_flow = synthesize(graph, scaled_library("8nm"))
    commercial = tool.evaluate(graph)
    assert commercial.delay_ns <= search_flow.delay_ns * 1.05


def test_provided_adders_cover_classics(tool):
    offerings = tool.provided_adders(8)
    assert set(offerings) == {
        "ripple", "sklansky", "kogge_stone", "brent_kung", "han_carlson", "ladner_fischer",
    }
    assert all(r.area_um2 > 0 for r in offerings.values())


def test_best_provided_depends_on_omega(tool):
    name_area, _ = tool.best_provided(16, delay_weight=0.05)
    name_delay, _ = tool.best_provided(16, delay_weight=0.95)
    assert name_area != name_delay


def test_deterministic(tool):
    a = tool.evaluate(sklansky(8))
    b = tool.evaluate(sklansky(8))
    assert (a.area_um2, a.delay_ns) == (b.area_um2, b.delay_ns)
