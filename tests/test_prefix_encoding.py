"""Tests for graph encodings (repro.prefix.encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix import (
    bits_to_graph,
    free_cells,
    graph_to_bits,
    graph_to_grid,
    grid_to_graph,
    num_free_cells,
    random_graph,
    sklansky,
)


class TestFreeCells:
    def test_count_formula(self):
        for n in (2, 3, 4, 8, 16):
            assert len(free_cells(n)) == num_free_cells(n) == (n - 1) * (n - 2) // 2

    def test_cells_exclude_forced_positions(self):
        for i, j in free_cells(10):
            assert 0 < j < i


class TestRoundtrips:
    def test_legal_graph_roundtrips_through_bits(self):
        g = sklansky(16)
        assert bits_to_graph(graph_to_bits(g), 16) == g

    def test_bits_length_validated(self):
        with pytest.raises(ValueError):
            bits_to_graph(np.zeros(5, dtype=bool), 16)

    def test_grid_roundtrip(self):
        g = sklansky(8)
        grid = graph_to_grid(g)
        assert grid.dtype == np.float64
        assert grid_to_graph(grid) == g

    def test_grid_thresholding(self):
        g = sklansky(8)
        noisy = graph_to_grid(g) * 0.8 + 0.1  # 1 -> 0.9, 0 -> 0.1
        assert grid_to_graph(noisy, threshold=0.5) == g

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), n=st.integers(3, 16), density=st.floats(0, 1))
    def test_property_random_graphs_roundtrip(self, seed, n, density):
        rng = np.random.default_rng(seed)
        g = random_graph(n, rng, density)
        assert g.is_legal()
        assert bits_to_graph(graph_to_bits(g), n) == g


class TestRandomGraph:
    def test_density_zero_gives_ripple(self):
        rng = np.random.default_rng(0)
        g = random_graph(8, rng, density=0.0)
        assert g.node_count() == 7

    def test_density_controls_size(self):
        rng = np.random.default_rng(1)
        sparse = np.mean([random_graph(12, rng, 0.05).node_count() for _ in range(20)])
        dense = np.mean([random_graph(12, rng, 0.6).node_count() for _ in range(20)])
        assert dense > sparse
