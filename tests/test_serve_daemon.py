"""Tests for the evaluation daemon + remote simulator (repro.serve).

The daemon runs on a background thread with its own event loop over a
real unix-domain socket; clients connect exactly as a separate process
would.  ``capture_engine_spans`` stays off (the default) because these
embedded daemons share the process with client-side tracers.
"""

import threading
import warnings

import numpy as np
import pytest

from helpers import unique_random_graphs as unique_graphs

from repro.baselines import GAConfig, GeneticAlgorithm
from repro.circuits import adder_task
from repro.engine import EngineSimulator, EvaluationEngine
from repro.obs import trace
from repro.opt import BudgetExhausted, RunRecord
from repro.serve import protocol as wire
from repro.serve.client import (
    RemoteEngineSimulator,
    RemoteEvaluationError,
    ServeClient,
    ServeUnavailable,
)
from repro.serve.daemon import EvalDaemon


@pytest.fixture
def task():
    return adder_task(8, 0.66)


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a tmp socket; drained and joined at teardown."""
    instance = EvalDaemon(
        str(tmp_path / "s.sock"), engine=EvaluationEngine(), quantum=2
    )
    thread = instance.run_in_thread()
    yield instance
    instance.begin_drain()
    thread.join(timeout=15)
    assert not thread.is_alive(), "daemon failed to drain"


def ga_record(simulator, seed, label="GA"):
    """Run one GA seed to budget exhaustion and snapshot its record."""
    try:
        GeneticAlgorithm(GAConfig(population_size=8)).run(
            simulator, np.random.default_rng(seed)
        )
    except BudgetExhausted:
        pass
    return RunRecord.from_simulator(label, seed, simulator)


def assert_records_identical(record, reference):
    assert record.seed == reference.seed
    np.testing.assert_array_equal(record.costs, reference.costs)
    np.testing.assert_array_equal(record.areas, reference.areas)
    np.testing.assert_array_equal(record.delays, reference.delays)
    assert record.best_graph == reference.best_graph


class TestRemoteBitIdentity:
    def test_single_client_matches_in_process(self, daemon, task):
        reference = ga_record(
            EngineSimulator(task, budget=12, engine=EvaluationEngine()), seed=0
        )
        client = ServeClient(daemon.socket_path, client_name="t1")
        remote = RemoteEngineSimulator(task, budget=12, client=client)
        record = ga_record(remote, seed=0)
        assert_records_identical(record, reference)
        assert remote.remote  # never fell back
        # the daemon did the synthesis; the client-side engine did none
        assert remote.engine.telemetry.synth_calls == 0
        assert remote.telemetry.synth_calls > 0  # folded counter deltas
        client.close()

    def test_two_concurrent_clients_match_serial_runs(self, daemon, task):
        references = {
            seed: ga_record(
                EngineSimulator(task, budget=12, engine=EvaluationEngine()),
                seed=seed,
            )
            for seed in (0, 1)
        }
        results, errors = {}, []

        def run(seed):
            try:
                client = ServeClient(
                    daemon.socket_path, client_name=f"tenant{seed}"
                )
                remote = RemoteEngineSimulator(task, budget=12, client=client)
                results[seed] = ga_record(remote, seed=seed)
                assert remote.remote
                client.close()
            except Exception as error:  # surfaced in the main thread
                errors.append(error)

        threads = [threading.Thread(target=run, args=(s,)) for s in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        for seed in (0, 1):
            assert_records_identical(results[seed], references[seed])


class TestFairShareScheduling:
    def test_schedule_trace_interleaves_tenants(self, daemon, task):
        # Tenant "bulk" submits a 12-graph population; tenant "quick"
        # submits 2 graphs right after.  With quantum=2 the scheduler
        # must not let bulk's whole batch run before quick's job.
        graphs = unique_graphs(8, 14)
        bulk_graphs, quick_graphs = graphs[:12], graphs[12:]
        payload = wire.task_to_dict(task)
        bulk = ServeClient(daemon.socket_path, client_name="bulk")
        quick = ServeClient(daemon.socket_path, client_name="quick")

        done = {}

        def run(name, client, batch):
            done[name] = client.evaluate(
                payload, "", wire.graphs_to_wire(batch)
            )

        bulk_thread = threading.Thread(
            target=run, args=("bulk", bulk, bulk_graphs)
        )
        quick_thread = threading.Thread(
            target=run, args=("quick", quick, quick_graphs)
        )
        bulk_thread.start()
        quick_thread.start()
        bulk_thread.join(timeout=120)
        quick_thread.join(timeout=120)
        assert len(done["bulk"].metrics) == 12
        assert len(done["quick"].metrics) == 2

        schedule = bulk.stats().schedule
        by_tenant = [s["tenant"] for s in schedule]
        assert "quick" in by_tenant and "bulk" in by_tenant
        # fairness, observably: quick's slice ran before bulk finished
        assert by_tenant.index("quick") < max(
            i for i, t in enumerate(by_tenant) if t == "bulk"
        )
        # and no slice exceeded the deficit the quantum allows
        assert all(s["count"] <= 12 for s in schedule)
        assert sum(s["count"] for s in schedule if s["tenant"] == "bulk") == 12
        bulk.close()
        quick.close()


class TestDrainAndFallback:
    def test_drain_finishes_queued_work_then_refuses(self, tmp_path, task):
        daemon = EvalDaemon(
            str(tmp_path / "d.sock"), engine=EvaluationEngine(), quantum=4
        )
        thread = daemon.run_in_thread()
        graphs = unique_graphs(8, 3)
        payload = wire.task_to_dict(task)
        client = ServeClient(daemon.socket_path, client_name="t1")

        # Submit, then immediately ask for shutdown: the queued job must
        # still complete and deliver.
        reply = client.request(
            wire.SubmitBatch(
                id="job-a", tenant="t1", task=payload,
                graphs=wire.graphs_to_wire(graphs),
            )
        )
        assert isinstance(reply, wire.Accepted)
        stopper = ServeClient(daemon.socket_path, client_name="stopper")
        stopper.shutdown()
        stopper.close()

        # new work is refused with the draining code (submitted before
        # the poll below: once job-a is delivered the daemon may exit)
        refused = client.request(
            wire.SubmitBatch(
                id="job-b", tenant="t1", task=payload,
                graphs=wire.graphs_to_wire(graphs),
            )
        )
        assert isinstance(refused, wire.ErrorReply)
        assert refused.code == "draining"

        result = None
        for _ in range(2000):
            answer = client.request(wire.Poll(id="job-a"))
            if isinstance(answer, wire.BatchResult):
                result = answer
                break
            assert isinstance(answer, wire.Pending)
        assert result is not None and len(result.metrics) == 3
        client.close()
        thread.join(timeout=15)
        assert not thread.is_alive()

    def test_mid_run_fallback_is_warned_and_identical(self, tmp_path, task):
        daemon = EvalDaemon(
            str(tmp_path / "f.sock"), engine=EvaluationEngine(), quantum=8
        )
        thread = daemon.run_in_thread()
        # the reference mirrors the remote run exactly: the same warm-up
        # pair first, then the GA, all against one budget of 12
        serial = EngineSimulator(task, budget=12, engine=EvaluationEngine())
        serial.query_plan(unique_graphs(8, 14, seed=3)[:2])
        reference = ga_record(serial, seed=3)
        client = ServeClient(daemon.socket_path, client_name="t1")
        remote = RemoteEngineSimulator(task, budget=12, client=client)
        # a first remote round proves the daemon path was actually used
        first = remote.query_plan(unique_graphs(8, 14, seed=3)[:2])
        assert all(e is not None for e in first)
        daemon.begin_drain()
        thread.join(timeout=15)
        assert not thread.is_alive()

        with pytest.warns(RuntimeWarning, match="falling back"):
            record = ga_record(remote, seed=3)
        assert not remote.remote
        # The run completed on the in-process engine; because budget
        # accounting never left the client, the record is still exactly
        # the serial reference.
        assert_records_identical(record, reference)
        client.close()


class TestJobLifecycle:
    def test_timeout_fails_the_job(self, daemon, task):
        client = ServeClient(daemon.socket_path, client_name="t1")
        with pytest.raises(RemoteEvaluationError, match="timeout"):
            client.evaluate(
                wire.task_to_dict(task),
                "",
                wire.graphs_to_wire(unique_graphs(8, 2)),
                timeout=0.0,
            )
        client.close()

    def test_cancel_unknown_job_is_an_error(self, daemon):
        client = ServeClient(daemon.socket_path, client_name="t1")
        answer = client.request(wire.Cancel(id="ghost"))
        assert isinstance(answer, wire.ErrorReply)
        assert answer.code == "unknown_job"
        client.close()

    def test_cancel_submitted_job(self, daemon, task):
        client = ServeClient(daemon.socket_path, client_name="t1")
        accepted = client.request(
            wire.SubmitBatch(
                id="doomed", tenant="t1", task=wire.task_to_dict(task),
                graphs=wire.graphs_to_wire(unique_graphs(8, 6)),
            )
        )
        assert isinstance(accepted, wire.Accepted)
        cancelled = client.request(wire.Cancel(id="doomed"))
        assert isinstance(cancelled, wire.Cancelled)
        # The job may have raced to completion before the cancel landed;
        # either terminal answer is fine, the daemon just must keep
        # serving coherently.
        answer = client.request(wire.Poll(id="doomed"))
        assert isinstance(answer, (wire.BatchResult, wire.ErrorReply))
        if isinstance(answer, wire.ErrorReply):
            assert answer.code == "cancelled"
        assert isinstance(client.stats(), wire.StatsReply)
        client.close()

    def test_fingerprint_mismatch_is_rejected(self, daemon, task):
        client = ServeClient(daemon.socket_path, client_name="t1")
        reply = client.request(
            wire.SubmitBatch(
                id="bad", tenant="t1", task=wire.task_to_dict(task),
                fingerprint="deadbeef",
                graphs=wire.graphs_to_wire(unique_graphs(8, 1)),
            )
        )
        assert isinstance(reply, wire.ErrorReply)
        assert reply.code == "bad_request"
        assert "fingerprint mismatch" in reply.message
        client.close()

    def test_duplicate_job_id_is_rejected(self, daemon, task):
        client = ServeClient(daemon.socket_path, client_name="t1")
        payload = wire.task_to_dict(task)
        graphs = wire.graphs_to_wire(unique_graphs(8, 1))
        first = client.request(
            wire.SubmitBatch(id="dup", tenant="t1", task=payload, graphs=graphs)
        )
        assert isinstance(first, wire.Accepted)
        second = client.request(
            wire.SubmitBatch(id="dup", tenant="t1", task=payload, graphs=graphs)
        )
        assert isinstance(second, wire.ErrorReply)
        assert second.code == "bad_request"
        client.close()

    def test_bad_line_gets_error_not_disconnect(self, daemon):
        client = ServeClient(daemon.socket_path, client_name="t1")
        with client._lock:
            client._sock.sendall(b'{"v": 1, "type": "nope"}\n')
            line = client._reader.readline()
        reply = wire.decode(line)
        assert isinstance(reply, wire.ErrorReply)
        # the connection survived: a normal request still works
        assert isinstance(client.stats(), wire.StatsReply)
        client.close()


class TestSpanThreading:
    def test_daemon_spans_land_in_client_trace(self, daemon, task):
        client = ServeClient(daemon.socket_path, client_name="t1")
        remote = RemoteEngineSimulator(task, budget=8, client=client)
        tracer = trace.Tracer(collect=True)
        with tracer.activate():
            with tracer.span("experiment", default=True) as root:
                remote.query_plan(unique_graphs(8, 3))
        spans = tracer.drain()
        names = {s["name"] for s in spans}
        assert {"serve_job", "serve_evaluate", "experiment"} <= names
        by_id = {s["span_id"]: s for s in spans}
        job = next(s for s in spans if s["name"] == "serve_job")
        # one coherent tree: daemon spans share the client's trace id and
        # chain through serve_job up into the client's own span stack
        assert job["trace_id"] == tracer.trace_id
        assert job["parent_id"] in by_id
        evaluate = next(s for s in spans if s["name"] == "serve_evaluate")
        assert evaluate["parent_id"] == job["span_id"]
        client.close()


class TestTransparentAttach:
    def test_engine_simulator_attaches_via_env(self, daemon, task, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SOCKET", daemon.socket_path)
        engine = EvaluationEngine()
        simulator = engine.simulator(task, budget=6)
        assert isinstance(simulator, RemoteEngineSimulator)
        assert simulator.engine is engine  # fallback engine is the caller's
        simulator.client.close()

    def test_unreachable_socket_warns_and_falls_back(self, tmp_path, task, monkeypatch):
        monkeypatch.setenv(
            "REPRO_ENGINE_SOCKET", str(tmp_path / "nobody-home.sock")
        )
        engine = EvaluationEngine()
        with pytest.warns(RuntimeWarning, match="in-process engine"):
            simulator = engine.simulator(task, budget=6)
        assert type(simulator) is EngineSimulator

    def test_unset_env_means_plain_simulator(self, task, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_SOCKET", raising=False)
        simulator = EvaluationEngine().simulator(task, budget=6)
        assert type(simulator) is EngineSimulator
