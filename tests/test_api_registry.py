"""Tests for the method registry (repro.api.registry)."""

from dataclasses import dataclass

import pytest

from repro.api import (
    available_methods,
    build_algorithm,
    build_config,
    get_method,
    register_method,
)
from repro.api import registry as registry_module
from repro.baselines import GAConfig, GeneticAlgorithm, LatentBO
from repro.core import CircuitVAEOptimizer
from repro.prefix import sklansky


class TestRegistration:
    def test_builtins_registered_at_import(self):
        assert {"CircuitVAE", "GA", "RL", "BO", "Random"} <= set(available_methods())

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_method("GA", GAConfig)
            def _clone(config):
                return GeneticAlgorithm(config)

    def test_plugin_registration_and_lookup(self):
        @dataclass(frozen=True)
        class _TempConfig:
            knob: int = 1

        try:
            @register_method("temp-test-method", _TempConfig)
            def _build(config):
                return ("built", config)

            entry = get_method("temp-test-method")
            assert entry.config_cls is _TempConfig
            assert build_algorithm("temp-test-method", {"knob": 3}) == (
                "built", _TempConfig(knob=3),
            )
        finally:
            registry_module._REGISTRY.pop("temp-test-method", None)

    def test_config_cls_must_be_dataclass(self):
        with pytest.raises(TypeError):
            register_method("bad", dict)

    def test_unknown_method_lists_available(self):
        with pytest.raises(ValueError, match="GA"):
            get_method("definitely-not-registered")


class TestConfigBuilding:
    def test_defaults_when_params_empty(self):
        config = build_config("GA", {})
        assert config == GAConfig()

    def test_flat_and_nested_overrides(self):
        config = build_config(
            "CircuitVAE", {"latent_dim": 8, "train": {"epochs": 3}}
        )
        assert config.latent_dim == 8
        assert config.train.epochs == 3
        # unlisted nested fields keep their defaults
        assert config.train.beta == pytest.approx(0.01)

    def test_doubly_nested_config(self):
        config = build_config("BO", {"vae": {"latent_dim": 8, "search": {"num_steps": 5}}})
        assert config.vae.latent_dim == 8
        assert config.vae.search.num_steps == 5

    def test_unknown_param_rejected_with_dotted_path(self):
        with pytest.raises(ValueError, match="CircuitVAE.train.epochz"):
            build_config("CircuitVAE", {"train": {"epochz": 1}})

    def test_structure_name_resolves_to_graph(self):
        config = build_config("CircuitVAE", {"fixed_init_graph": "sklansky"}, n=8)
        assert config.fixed_init_graph == sklansky(8)

    def test_structure_name_needs_bitwidth(self):
        with pytest.raises(ValueError, match="bitwidth"):
            build_config("CircuitVAE", {"fixed_init_graph": "sklansky"})

    def test_build_algorithm_types(self):
        assert isinstance(build_algorithm("GA", {"population_size": 6}), GeneticAlgorithm)
        assert isinstance(build_algorithm("CircuitVAE"), CircuitVAEOptimizer)
        assert isinstance(build_algorithm("BO"), LatentBO)
