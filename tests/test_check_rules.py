"""Per-rule positive/negative fixtures for the repro.check lint level.

Every rule gets a seeded-violation fixture (must fire, with the right
rule id, symbol and file:line anchor) and a clean fixture (must stay
silent).  Whole-tree rules are exercised through hand-built contexts so
the fixtures never depend on the real tree's state; the real tree's
cleanliness is asserted separately in test_static_analysis.py.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.check import KNOBS, RULES, render_env_table, run_check
from repro.check.engine import CheckContext, load_context
from repro.check.findings import Baseline, Finding
from repro.check.rules import (
    env_stale_rule,
    readme_env_table_rule,
)

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _write(tmp_path, rel, text):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return str(path)


def _run(tmp_path, rel_paths, rule_id):
    return run_check(str(tmp_path), paths=rel_paths, rule_ids=[rule_id])


class TestRegistry:
    def test_all_five_analyzers_registered(self):
        assert set(RULES) >= {
            "check-env-knobs",
            "check-env-stale",
            "check-readme-env-table",
            "check-protocol-drift",
            "check-telemetry-names",
            "check-fast-path-contract",
            "check-thread-safety",
        }

    def test_rules_are_data(self):
        for rule in RULES.values():
            assert rule.severity in ("error", "warning"), rule.id
            assert rule.hint, rule.id
            assert rule.description, rule.id


class TestEnvKnobs:
    def test_unregistered_read_fires(self, tmp_path):
        _write(
            tmp_path,
            "bad.py",
            """
            import os
            os.environ.get("REPRO_BOGUS_KNOB", "1")
            """,
        )
        found = _run(tmp_path, ["bad.py"], "check-env-knobs")
        assert len(found) == 1
        f = found[0]
        assert f.rule == "check-env-knobs"
        assert f.severity == "error"
        assert f.symbol == "REPRO_BOGUS_KNOB"
        assert (f.path, f.line) == ("bad.py", 3)

    def test_indirect_constant_read_resolves(self, tmp_path):
        _write(
            tmp_path,
            "indirect.py",
            """
            import os
            _ENV = "REPRO_ALSO_BOGUS"
            value = os.environ[_ENV]
            """,
        )
        found = _run(tmp_path, ["indirect.py"], "check-env-knobs")
        assert [f.symbol for f in found] == ["REPRO_ALSO_BOGUS"]

    def test_registered_and_foreign_reads_silent(self, tmp_path):
        _write(
            tmp_path,
            "ok.py",
            """
            import os
            os.environ.get("REPRO_TRACE")       # registered knob
            os.environ.get("HOME")              # not our namespace
            os.getenv("REPRO_CACHE_DIR")
            """,
        )
        assert _run(tmp_path, ["ok.py"], "check-env-knobs") == []

    def test_stale_rule_flags_unread_knobs(self, tmp_path):
        # a full-tree context in which nothing reads any knob: every
        # registry entry must be reported stale.
        context = CheckContext(root=str(tmp_path), files=[], full_tree=True)
        found = list(env_stale_rule(context))
        assert {f.symbol for f in found} == set(KNOBS)

    def test_stale_rule_silent_on_subtree_scans(self, tmp_path):
        context = CheckContext(root=str(tmp_path), files=[], full_tree=False)
        assert list(env_stale_rule(context)) == []


class TestReadmeEnvTable:
    def _context(self, tmp_path, table):
        (tmp_path / "README.md").write_text(f"# fixture\n\n{table}\n\nmore\n")
        return CheckContext(root=str(tmp_path), files=[], full_tree=True)

    def test_generated_table_is_accepted(self, tmp_path):
        context = self._context(tmp_path, render_env_table())
        assert list(readme_env_table_rule(context)) == []

    def test_dropped_row_fires(self, tmp_path):
        lines = render_env_table().splitlines()
        del lines[3]
        found = list(readme_env_table_rule(self._context(tmp_path, "\n".join(lines))))
        assert len(found) == 1
        assert "disagrees with check/knobs.py" in found[0].message

    def test_missing_header_fires(self, tmp_path):
        found = list(readme_env_table_rule(self._context(tmp_path, "no table")))
        assert len(found) == 1
        assert "header not found" in found[0].message

    def test_table_has_ir_verify_row(self):
        assert any(
            row.startswith("| `REPRO_IR_VERIFY` |")
            for row in render_env_table().splitlines()
        )


class TestProtocolDrift:
    def test_real_protocol_is_drift_free(self):
        assert run_check(
            ROOT,
            paths=["src/repro/serve/protocol.py"],
            rule_ids=["check-protocol-drift"],
        ) == []

    def test_missing_and_extra_keys_fire(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/protocol.py",
            """
            def task_to_dict(task):
                return {
                    "name": task.name,
                    "n": task.n,
                    "circuit_type": task.circuit_type,
                    "library": {"name": task.library.name, "cells": {}},
                    "io_timing": {"input_arrival_ns": {}, "output_required_ns": {}},
                    "options": {
                        "target_delay_ns": 1.0,
                        "effort": "high",
                        "max_fanout": 4,
                        "buffer_cell": "BUF",
                        "sizing_iterations": 2,
                    },
                    "bogus": 1,
                }

            def task_from_dict(payload):
                return None
            """,
        )
        found = _run(
            tmp_path, ["src/repro/serve/protocol.py"], "check-protocol-drift"
        )
        task_level = [f for f in found if f.symbol == "to_dict:task"]
        assert len(task_level) == 1
        message = task_level[0].message
        # delay_weight/io_timing-sibling fields dropped, "bogus" invented
        assert "missing" in message and "'delay_weight'" in message
        assert "unexpected" in message and "'bogus'" in message

    def test_from_dict_constructor_drift_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/protocol.py",
            """
            def task_to_dict(task):
                return {}

            def task_from_dict(payload):
                return IOTiming(input_arrival_ns={}, wrong_kw=1)
            """,
        )
        found = _run(
            tmp_path, ["src/repro/serve/protocol.py"], "check-protocol-drift"
        )
        io = [f for f in found if f.symbol == "from_dict:IOTiming"]
        assert len(io) == 1
        assert "'wrong_kw'" in io[0].message


class TestTelemetryNames:
    def test_unknown_names_fire_with_symbols(self, tmp_path):
        _write(
            tmp_path,
            "t.py",
            """
            def run(telemetry, tracer):
                telemetry.add("synth_callz", 1)
                telemetry.add_stage_time("synthesiss", 0.1)
                with tracer.span("bogus_span"):
                    pass
            """,
        )
        found = _run(tmp_path, ["t.py"], "check-telemetry-names")
        assert {f.symbol for f in found} == {
            "counter:synth_callz",
            "stage:synthesiss",
            "span:bogus_span",
        }
        assert all(f.severity == "error" for f in found)

    def test_known_names_and_foreign_receivers_silent(self, tmp_path):
        _write(
            tmp_path,
            "ok.py",
            """
            def run(telemetry, tracer, queue):
                telemetry.add("synth_calls", 1)
                telemetry.add_stage_time("synthesis", 0.1)
                telemetry.add_stage_time("train_kernel:matmul", 0.1)
                with tracer.span("synthesize"):
                    pass
                queue.add("anything")  # not a telemetry receiver
            """,
        )
        assert _run(tmp_path, ["ok.py"], "check-telemetry-names") == []

    def test_stage_helper_first_positional_name(self, tmp_path):
        _write(
            tmp_path,
            "s.py",
            """
            def run(sinks):
                with stage(sinks, "not_a_stage"):
                    pass
                with stage_all(sinks, "train"):
                    pass
            """,
        )
        found = _run(tmp_path, ["s.py"], "check-telemetry-names")
        assert [f.symbol for f in found] == ["stage:not_a_stage"]


class TestFastPathContract:
    def test_incomplete_contract_fires_every_leg(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/fastmod.py",
            """
            FAST_PATH_CONTRACT = {
                "kill_switch": "REPRO_NOT_A_KNOB",
                "reference": "reference_fn",
                "bench": "bench_missing.py",
            }
            """,
        )
        found = _run(tmp_path, ["src/repro/fastmod.py"], "check-fast-path-contract")
        symbols = {f.symbol for f in found}
        assert symbols == {
            "switch:REPRO_NOT_A_KNOB",
            "read:REPRO_NOT_A_KNOB",
            "reference:reference_fn",
            "bench:bench_missing.py",
        }

    def test_complete_contract_is_silent(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/fastmod.py",
            """
            import os

            FAST_PATH_CONTRACT = {
                "kill_switch": "REPRO_COMPILED_TRAIN",
                "reference": "reference_fn",
                "bench": "bench_fast.py",
            }

            def fast(x):
                if os.environ.get("REPRO_COMPILED_TRAIN", "1") == "0":
                    return reference_fn(x)
                return x
            """,
        )
        _write(
            tmp_path,
            "benchmarks/bench_fast.py",
            "from repro.fastmod import fast\n",
        )
        found = _run(
            tmp_path,
            ["src/repro/fastmod.py", "benchmarks/bench_fast.py"],
            "check-fast-path-contract",
        )
        assert found == []

    def test_bench_not_importing_module_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/fastmod.py",
            """
            import os

            FAST_PATH_CONTRACT = {
                "kill_switch": "REPRO_COMPILED_TRAIN",
                "reference": "reference_fn",
                "bench": "bench_fast.py",
            }

            def fast(x):
                if os.environ.get("REPRO_COMPILED_TRAIN", "1") == "0":
                    return reference_fn(x)
                return x
            """,
        )
        _write(tmp_path, "benchmarks/bench_fast.py", "import os\n")
        found = _run(
            tmp_path,
            ["src/repro/fastmod.py", "benchmarks/bench_fast.py"],
            "check-fast-path-contract",
        )
        assert [f.symbol for f in found] == ["bench-import:repro.fastmod"]
        assert found[0].path == "benchmarks/bench_fast.py"


class TestThreadSafety:
    def test_unannotated_shared_state_warns(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/state.py",
            """
            CACHE = {}

            class Registry:
                entries = []
            """,
        )
        found = _run(tmp_path, ["src/repro/serve/state.py"], "check-thread-safety")
        assert {f.symbol for f in found} == {"CACHE", "Registry.entries"}
        assert all(f.severity == "warning" for f in found)

    def test_annotation_and_dunders_silence(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/state.py",
            """
            __all__ = ["CACHE"]

            # thread-safety: guarded by _LOCK in every accessor.
            CACHE = {}
            """,
        )
        assert (
            _run(tmp_path, ["src/repro/serve/state.py"], "check-thread-safety") == []
        )

    def test_out_of_scope_files_ignored(self, tmp_path):
        _write(tmp_path, "src/repro/prefix/state.py", "CACHE = {}\n")
        assert (
            _run(tmp_path, ["src/repro/prefix/state.py"], "check-thread-safety")
            == []
        )


class TestParseErrors:
    def test_syntax_error_becomes_finding(self, tmp_path):
        _write(tmp_path, "broken.py", "def nope(:\n")
        found = run_check(str(tmp_path), paths=["broken.py"])
        assert [f.rule for f in found] == ["check-parse-error"]
        assert found[0].severity == "error"


class TestBaseline:
    def test_split_partitions_and_reports_stale(self):
        finding = Finding(
            rule="check-env-knobs",
            severity="error",
            path="a.py",
            line=3,
            message="m",
            symbol="REPRO_X",
        )
        baseline = Baseline(
            entries={
                finding.key(): "kept on purpose",
                "check-env-knobs:gone.py:REPRO_GONE": "stale",
            }
        )
        active, suppressed, stale = baseline.split([finding])
        assert active == []
        assert suppressed == [finding]
        assert stale == ["check-env-knobs:gone.py:REPRO_GONE"]

    def test_load_rejects_empty_justification(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"entries": [{"key": "k", "justification": ""}]}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestCli:
    """End-to-end exit codes through ``python -m repro check``."""

    def _check(self, *argv, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "check", *argv],
            cwd=cwd or ROOT,
            env=env,
            capture_output=True,
            text=True,
        )

    def _seeded_root(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/bad.py",
            """
            import os
            os.environ.get("REPRO_SEEDED_VIOLATION")
            """,
        )
        return tmp_path

    def test_seeded_violation_exits_1_naming_rule_and_anchor(self, tmp_path):
        root = self._seeded_root(tmp_path)
        proc = self._check("src/repro/bad.py", "--root", str(root))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "[check-env-knobs]" in proc.stdout
        assert "src/repro/bad.py:3" in proc.stdout
        assert "REPRO_SEEDED_VIOLATION" in proc.stdout

    def test_json_format_is_machine_readable(self, tmp_path):
        root = self._seeded_root(tmp_path)
        proc = self._check(
            "src/repro/bad.py", "--root", str(root), "--format", "json"
        )
        payload = json.loads(proc.stdout)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "check-env-knobs"

    def test_baseline_suppresses_and_stale_fails_strict(self, tmp_path):
        root = self._seeded_root(tmp_path)
        key = "check-env-knobs:src/repro/bad.py:REPRO_SEEDED_VIOLATION"
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps({"entries": [{"key": key, "justification": "fixture"}]})
        )
        proc = self._check(
            "src/repro/bad.py", "--root", str(root), "--baseline", str(baseline)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "1 baselined" in proc.stdout

        stale = tmp_path / "stale.json"
        stale.write_text(
            json.dumps(
                {"entries": [{"key": "check-x:nowhere.py:gone", "justification": "?"}]}
            )
        )
        # stale keys only mean something on the full default scan
        proc = self._check("--root", str(root), "--baseline", str(stale), "--strict")
        assert proc.returncode == 1
        assert "check-stale-baseline" in proc.stdout

    def test_bad_root_is_a_usage_error(self, tmp_path):
        proc = self._check("--root", str(tmp_path / "nowhere"))
        assert proc.returncode == 2

    def test_render_env_table_round_trips(self):
        proc = self._check("--render-env-table")
        assert proc.returncode == 0
        assert proc.stdout.strip() == render_env_table().strip()


class TestContextLoading:
    def test_skips_pycache_and_dotdirs(self, tmp_path):
        _write(tmp_path, "pkg/__pycache__/junk.py", "x = (\n")
        _write(tmp_path, "pkg/.hidden/junk.py", "x = (\n")
        _write(tmp_path, "pkg/ok.py", "x = 1\n")
        context = load_context(str(tmp_path), paths=["pkg"])
        assert [s.rel for s in context.files] == ["pkg/ok.py"]
