"""Tests for loss functions (repro.nn.losses, repro.nn.functional)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import losses


class TestBCEWithLogits:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((4, 5))
        targets = (rng.random((4, 5)) > 0.5).astype(float)
        out = F.binary_cross_entropy_with_logits(
            nn.Tensor(logits), nn.Tensor(targets), reduction="none"
        ).numpy()
        p = 1 / (1 + np.exp(-logits))
        ref = -(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        np.testing.assert_allclose(out, ref, rtol=1e-10)

    def test_stable_at_extreme_logits(self):
        logits = nn.Tensor(np.array([1000.0, -1000.0]))
        targets = nn.Tensor(np.array([1.0, 0.0]))
        out = F.binary_cross_entropy_with_logits(logits, targets, reduction="none").numpy()
        np.testing.assert_allclose(out, [0.0, 0.0], atol=1e-12)

    def test_reductions(self):
        logits = nn.Tensor(np.zeros((2, 2)))
        targets = nn.Tensor(np.ones((2, 2)))
        mean = F.binary_cross_entropy_with_logits(logits, targets, "mean").item()
        total = F.binary_cross_entropy_with_logits(logits, targets, "sum").item()
        assert total == pytest.approx(mean * 4)
        with pytest.raises(ValueError):
            F.binary_cross_entropy_with_logits(logits, targets, "bogus")


class TestGaussianKL:
    def test_zero_at_standard_normal(self):
        mu = nn.Tensor(np.zeros((3, 8)))
        logvar = nn.Tensor(np.zeros((3, 8)))
        assert F.gaussian_kl(mu, logvar).item() == pytest.approx(0.0)

    def test_positive_elsewhere(self):
        mu = nn.Tensor(np.ones((2, 4)))
        logvar = nn.Tensor(np.full((2, 4), -1.0))
        assert F.gaussian_kl(mu, logvar).item() > 0

    def test_closed_form_value(self):
        # KL(N(1, e^0) || N(0,1)) per dim = 0.5 * (1 + 1 - 0 - 1) = 0.5
        mu = nn.Tensor(np.ones((1, 4)))
        logvar = nn.Tensor(np.zeros((1, 4)))
        assert F.gaussian_kl(mu, logvar).item() == pytest.approx(2.0)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(1)
        out = F.softmax(nn.Tensor(rng.standard_normal((5, 7)))).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(2)
        x = nn.Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()), rtol=1e-10
        )


class TestWeightedLosses:
    def test_weighted_mean_uniform_equals_mean(self):
        vals = nn.Tensor(np.array([1.0, 2.0, 3.0]))
        out = losses.weighted_mean(vals, np.ones(3))
        assert out.item() == pytest.approx(2.0)

    def test_weighted_mean_respects_weights(self):
        vals = nn.Tensor(np.array([1.0, 100.0]))
        out = losses.weighted_mean(vals, np.array([1.0, 0.0]))
        assert out.item() == pytest.approx(1.0)

    def test_weighted_mean_validates(self):
        vals = nn.Tensor(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            losses.weighted_mean(vals, np.ones(3))
        with pytest.raises(ValueError):
            losses.weighted_mean(vals, np.zeros(2))

    def test_reconstruction_loss_sums_cells(self):
        logits = nn.Tensor(np.zeros((2, 3, 3)))
        target = nn.Tensor(np.ones((2, 3, 3)))
        # 9 cells * log(2) per sample
        out = losses.reconstruction_loss(logits, target)
        assert out.item() == pytest.approx(9 * np.log(2.0))

    def test_cost_prediction_loss(self):
        pred = nn.Tensor(np.array([1.0, 2.0]))
        out = losses.cost_prediction_loss(pred, np.array([0.0, 0.0]))
        assert out.item() == pytest.approx((1.0 + 4.0) / 2)

    def test_mse_loss(self):
        a = nn.Tensor(np.array([1.0, 3.0]))
        b = nn.Tensor(np.array([0.0, 0.0]))
        assert F.mse_loss(a, b).item() == pytest.approx(5.0)
