"""Tests for structural metrics (repro.prefix.metrics)."""

import pytest

from repro.prefix import (
    brent_kung,
    depth,
    fanout_histogram,
    hamming_distance,
    kogge_stone,
    max_fanout,
    node_count,
    ripple_carry,
    sklansky,
    structure_summary,
)


def test_node_count_and_depth_delegate():
    g = sklansky(16)
    assert node_count(g) == g.node_count()
    assert depth(g) == g.depth()


def test_kogge_stone_unit_span_fanout():
    # In KS every span feeds at most a few children; Sklansky roots feed many.
    assert max_fanout(kogge_stone(32)) < max_fanout(sklansky(32))


def test_fanout_histogram_totals():
    g = brent_kung(16)
    hist = fanout_histogram(g)
    assert sum(hist.values()) == len(g.nodes())


def test_hamming_distance_zero_iff_equal():
    a, b = sklansky(16), sklansky(16)
    assert hamming_distance(a, b) == 0
    assert hamming_distance(a, kogge_stone(16)) > 0


def test_hamming_distance_symmetric():
    a, b = sklansky(16), brent_kung(16)
    assert hamming_distance(a, b) == hamming_distance(b, a)


def test_hamming_distance_width_mismatch():
    with pytest.raises(ValueError):
        hamming_distance(sklansky(8), sklansky(16))


def test_structure_summary_keys():
    s = structure_summary(ripple_carry(8))
    assert s["nodes"] == 7
    assert s["depth"] == 7
    assert s["max_fanout"] == 1
    assert set(s) == {"n", "nodes", "depth", "max_fanout", "mean_fanout"}
