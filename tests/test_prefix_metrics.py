"""Tests for structural metrics (repro.prefix.metrics)."""

import numpy as np
import pytest

from repro.prefix import (
    batch_depths,
    batch_levels,
    batch_node_counts,
    brent_kung,
    depth,
    fanout_histogram,
    hamming_distance,
    kogge_stone,
    max_fanout,
    node_count,
    ripple_carry,
    sklansky,
    stacked_grids,
    structure_summary,
    unique_random_graphs,
)


def test_node_count_and_depth_delegate():
    g = sklansky(16)
    assert node_count(g) == g.node_count()
    assert depth(g) == g.depth()


def test_kogge_stone_unit_span_fanout():
    # In KS every span feeds at most a few children; Sklansky roots feed many.
    assert max_fanout(kogge_stone(32)) < max_fanout(sklansky(32))


def test_fanout_histogram_totals():
    g = brent_kung(16)
    hist = fanout_histogram(g)
    assert sum(hist.values()) == len(g.nodes())


def test_hamming_distance_zero_iff_equal():
    a, b = sklansky(16), sklansky(16)
    assert hamming_distance(a, b) == 0
    assert hamming_distance(a, kogge_stone(16)) > 0


def test_hamming_distance_symmetric():
    a, b = sklansky(16), brent_kung(16)
    assert hamming_distance(a, b) == hamming_distance(b, a)


def test_hamming_distance_width_mismatch():
    with pytest.raises(ValueError):
        hamming_distance(sklansky(8), sklansky(16))


def test_structure_summary_keys():
    s = structure_summary(ripple_carry(8))
    assert s["nodes"] == 7
    assert s["depth"] == 7
    assert s["max_fanout"] == 1
    assert set(s) == {"n", "nodes", "depth", "max_fanout", "mean_fanout"}


class TestBatchMetrics:
    def graphs(self, n=12, count=8):
        classics = [sklansky(n), brent_kung(n), kogge_stone(n), ripple_carry(n)]
        return classics + list(
            unique_random_graphs(n, count, np.random.default_rng(5))
        )

    def test_stacked_grids_shape_and_width_check(self):
        graphs = self.graphs()
        stack = stacked_grids(graphs)
        assert stack.shape == (len(graphs), 12, 12)
        with pytest.raises(ValueError):
            stacked_grids([sklansky(8), sklansky(16)])
        with pytest.raises(ValueError):
            stacked_grids([])

    def test_batch_levels_match_scalar_levels(self):
        graphs = self.graphs()
        levels = batch_levels(stacked_grids(graphs))
        for b, graph in enumerate(graphs):
            expected = graph.levels()
            for i in range(graph.n):
                for j in range(i + 1):
                    assert levels[b, i, j] == expected.get((i, j), 0), (b, i, j)

    def test_batch_depths_and_node_counts_match_scalar(self):
        graphs = self.graphs()
        stack = stacked_grids(graphs)
        assert batch_depths(stack).tolist() == [g.depth() for g in graphs]
        assert batch_node_counts(stack).tolist() == [
            g.node_count() for g in graphs
        ]

    def test_batch_levels_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            batch_levels(np.ones((4, 4), dtype=bool))
