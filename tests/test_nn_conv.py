"""Tests for conv kernels (repro.nn.conv) and their autograd wrappers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.conv import (
    conv2d_forward,
    conv_output_size,
    conv_transpose2d_forward,
)

from helpers import gradcheck, numerical_grad


def naive_conv2d(x, w, stride, padding):
    """Reference direct convolution, O(everything)."""
    b, cin, h, wdt = x.shape
    cout, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(wdt, kw, stride, padding)
    out = np.zeros((b, cout, oh, ow))
    for bi in range(b):
        for co in range(cout):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[bi, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[bi, co, i, j] = (patch * w[co]).sum()
    return out


class TestForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_conv_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        np.testing.assert_allclose(
            conv2d_forward(x, w, stride, padding),
            naive_conv2d(x, w, stride, padding),
            atol=1e-10,
        )

    def test_output_size_formula(self):
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(16, 4, 2, 1) == 8

    def test_conv_transpose_inverts_stride2_shape(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 5, 5))
        w = rng.standard_normal((4, 2, 4, 4))
        out = conv_transpose2d_forward(x, w, stride=2, padding=1)
        assert out.shape == (1, 2, 10, 10)

    def test_conv_transpose_is_adjoint_of_conv(self):
        """<conv(x), y> == <x, convT(y)> for matching shapes (adjointness)."""
        rng = np.random.default_rng(2)
        # 7x7 input: (7 - 3 + 2*1) is divisible by stride 2, so the
        # transpose shape is unambiguous (no output_padding needed).
        x = rng.standard_normal((1, 3, 7, 7))
        w = rng.standard_normal((5, 3, 3, 3))
        y = rng.standard_normal((1, 5, 4, 4))
        lhs = (conv2d_forward(x, w, 2, 1) * y).sum()
        # The same weight array reinterpreted as (in=5, out=3, kh, kw) makes
        # conv_transpose the exact adjoint of conv.
        rhs = (x * conv_transpose2d_forward(y, w, 2, 1)).sum()
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)


class TestGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_conv2d_gradcheck(self, stride, padding):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3)) * 0.2

        def f():
            return float((F.conv2d(nn.Tensor(x), nn.Tensor(w), stride=stride, padding=padding).numpy() ** 2).sum())

        xt = nn.Tensor(x, requires_grad=True)
        wt = nn.Tensor(w, requires_grad=True)
        out = F.conv2d(xt, wt, stride=stride, padding=padding)
        (out * out).sum().backward()
        np.testing.assert_allclose(xt.grad, numerical_grad(f, x), atol=1e-5)
        np.testing.assert_allclose(wt.grad, numerical_grad(f, w), atol=1e-5)

    def test_conv_transpose2d_gradcheck(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((3, 2, 4, 4)) * 0.2

        def f():
            return float((F.conv_transpose2d(nn.Tensor(x), nn.Tensor(w), stride=2, padding=1).numpy() ** 2).sum())

        xt = nn.Tensor(x, requires_grad=True)
        wt = nn.Tensor(w, requires_grad=True)
        out = F.conv_transpose2d(xt, wt, stride=2, padding=1)
        (out * out).sum().backward()
        np.testing.assert_allclose(xt.grad, numerical_grad(f, x), atol=1e-5)
        np.testing.assert_allclose(wt.grad, numerical_grad(f, w), atol=1e-5)

    @pytest.mark.parametrize("compiled", [False, True])
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_conv2d_gradcheck_helper_both_engines(self, compiled, stride, padding):
        """Previously-untested (stride, padding) corners, eager + compiled."""
        rng = np.random.default_rng(6)
        x = nn.Tensor(rng.standard_normal((2, 2, 7, 7)), requires_grad=True)
        w = nn.Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.3, requires_grad=True)
        gradcheck(
            lambda a, ww: (F.conv2d(a, ww, stride=stride, padding=padding) ** 2).sum(),
            x,
            w,
            compiled=compiled,
            atol=5e-5,
            rtol=5e-4,
        )

    @pytest.mark.parametrize("compiled", [False, True])
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv_transpose2d_gradcheck_helper_both_engines(
        self, compiled, stride, padding
    ):
        rng = np.random.default_rng(7)
        x = nn.Tensor(rng.standard_normal((2, 3, 4, 4)), requires_grad=True)
        w = nn.Tensor(rng.standard_normal((3, 2, 4, 4)) * 0.3, requires_grad=True)
        gradcheck(
            lambda a, ww: (
                F.conv_transpose2d(a, ww, stride=stride, padding=padding) ** 2
            ).sum(),
            x,
            w,
            compiled=compiled,
            atol=5e-5,
            rtol=5e-4,
        )

    def test_conv_bias_gradient(self):
        rng = np.random.default_rng(5)
        x = nn.Tensor(rng.standard_normal((2, 1, 4, 4)))
        w = nn.Tensor(rng.standard_normal((3, 1, 3, 3)), requires_grad=True)
        b = nn.Tensor(np.zeros(3), requires_grad=True)
        out = F.conv2d(x, w, b, padding=1)
        out.sum().backward()
        # dL/db = number of spatial positions per channel.
        np.testing.assert_allclose(b.grad, np.full(3, 2 * 16.0))
