"""Cross-module integration tests: the full paper pipeline at tiny scale.

The runner-pipeline tests describe their grids as declarative
:class:`repro.api.ExperimentSpec` values and execute them through
:class:`repro.api.Session` — the supported path since the deprecation of
``run_method``/``run_comparison`` (whose shim behaviour is covered in
``TestDeprecatedShims``).
"""

import warnings

import numpy as np
import pytest

from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec
from repro.baselines import GAConfig, GeneticAlgorithm, RandomSearch
from repro.circuits import adder_task, gray_to_binary_task, realistic_adder_task
from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig
from repro.opt import (
    CircuitSimulator,
    aggregate_curves,
    run_comparison,
    run_method,
    vae_speedup,
)
from repro.synth import CommercialTool, scaled_library

#: The tiny CircuitVAE both the spec-driven and direct tests run.
VAE_PARAMS = dict(
    latent_dim=6, base_channels=4, hidden_dim=32, initial_samples=20,
    first_round_epochs=8, train=dict(epochs=4, batch_size=16),
    search=dict(num_parallel=8, num_steps=20, capture_every=10),
)


def vae_factory(_seed):
    return CircuitVAEOptimizer(
        CircuitVAEConfig(
            latent_dim=6, base_channels=4, hidden_dim=32, initial_samples=20,
            first_round_epochs=8, train=TrainConfig(epochs=4, batch_size=16),
            search=SearchConfig(num_parallel=8, num_steps=20, capture_every=10),
        )
    )


def run_spec(spec):
    with Session() as session:
        return session.run(spec)


class TestRunnerPipeline:
    def test_session_produces_records(self):
        spec = ExperimentSpec(
            name="vae-tiny",
            task=TaskSpec(circuit_type="adder", n=8, delay_weight=0.66),
            methods=(MethodSpec("CircuitVAE", params=VAE_PARAMS),),
            budget=50,
            seeds=(0, 1),
        )
        records = run_spec(spec).records["CircuitVAE"]
        assert len(records) == 2
        assert all(r.num_simulations == 50 for r in records)
        assert all(r.method == "CircuitVAE" for r in records)
        assert records[0].costs.tolist() != records[1].costs.tolist()

    def test_multi_method_spec_pairs_seeds(self):
        spec = ExperimentSpec(
            name="pairing",
            task=TaskSpec(circuit_type="adder", n=8, delay_weight=0.66),
            methods=(
                MethodSpec("GA", params={"population_size": 10}),
                MethodSpec("Random"),
            ),
            budget=40,
            num_seeds=2,
        )
        results = run_spec(spec).records
        assert set(results) == {"GA", "Random"}
        assert results["GA"][0].seed == results["Random"][0].seed

    def test_aggregate_and_speedup_pipeline(self):
        spec = ExperimentSpec(
            name="speedup",
            task=TaskSpec(circuit_type="adder", n=8, delay_weight=0.66),
            methods=(
                MethodSpec("CircuitVAE", params=VAE_PARAMS),
                MethodSpec("GA", params={"population_size": 10}),
            ),
            budget=60,
            seeds=(0, 1),
        )
        records = run_spec(spec).records
        agg = aggregate_curves(records["CircuitVAE"], budgets=[20, 40, 60])
        assert np.all(np.diff(agg["median"]) <= 1e-12)  # monotone improvement
        speedups = vae_speedup(records["CircuitVAE"], records["GA"])
        assert len(speedups) == 2
        assert all(s > 0 for s in speedups)


class TestGrayPipeline:
    def test_vae_on_gray_task(self):
        """Sec. 5.5: the identical machinery optimizes a different circuit
        type by swapping the cell mapping."""
        task = gray_to_binary_task(n=8)
        sim = CircuitSimulator(task, budget=50)
        best = vae_factory(0).run(sim, np.random.default_rng(0))
        assert best.graph.n == 8
        from repro.prefix import check_gray_to_binary

        assert check_gray_to_binary(best.graph, np.random.default_rng(1))


class TestRealisticPipeline:
    def test_search_then_commercial_eval(self):
        """Sec. 5.4: search with the open flow, evaluate with the
        commercial tool — the domain gap must not destroy the design."""
        task = realistic_adder_task(n=8, delay_weight=0.6)
        sim = CircuitSimulator(task, budget=40)
        best = vae_factory(0).run(sim, np.random.default_rng(2))
        tool = CommercialTool(scaled_library("8nm"), task.io_timing)
        commercial = tool.evaluate(best.graph)
        assert commercial.area_um2 > 0 and commercial.delay_ns > 0
        # The commercial flow is differently tuned, so metrics differ.
        assert commercial.delay_ns != pytest.approx(best.delay_ns, rel=1e-9)


class TestSeedIndependence:
    def test_methods_share_simulator_semantics(self):
        """All methods must count simulations identically (unique designs)."""
        for method in (
            MethodSpec("Random"),
            MethodSpec("GA", params={"population_size": 8}),
        ):
            spec = ExperimentSpec(
                name="seed-independence",
                task=TaskSpec(circuit_type="adder", n=8, delay_weight=0.66),
                methods=(method,),
                budget=30,
                seeds=(3,),
            )
            records = run_spec(spec).records[method.display_name]
            assert records[0].num_simulations == 30


class TestDeprecatedShims:
    """run_method/run_comparison must warn once and delegate unchanged."""

    def test_run_method_warns_and_delegates(self):
        task = adder_task(8, 0.66)
        with pytest.warns(DeprecationWarning, match="run_method is deprecated"):
            records = run_method(
                lambda s: RandomSearch(), task, budget=8, seeds=[0]
            )
        assert len(records) == 1
        assert records[0].num_simulations == 8

    def test_run_comparison_warns_and_pairs_seeds(self):
        task = adder_task(8, 0.66)
        with pytest.warns(DeprecationWarning, match="run_comparison is deprecated"):
            results = run_comparison(
                {
                    "GA": lambda s: GeneticAlgorithm(GAConfig(population_size=8)),
                    "Random": lambda s: RandomSearch(),
                },
                task,
                budget=8,
                num_seeds=2,
            )
        assert [r.seed for r in results["GA"]] == [
            r.seed for r in results["Random"]
        ]
        assert all(r.num_simulations == 8 for r in results["GA"])

    def test_shim_records_match_session(self):
        spec = ExperimentSpec(
            name="shim-parity",
            task=TaskSpec(circuit_type="adder", n=4, delay_weight=0.66),
            methods=(MethodSpec("GA", params={"population_size": 8}),),
            budget=6,
            num_seeds=2,
            curve_points=3,
        )
        session_records = run_spec(spec).records["GA"]
        task = adder_task(4, 0.66)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim_records = run_method(
                lambda s: GeneticAlgorithm(GAConfig(population_size=8)),
                task,
                budget=6,
                seeds=spec.seed_list(),
                method_name="GA",
            )
        for record, reference in zip(session_records, shim_records):
            assert record.seed == reference.seed
            np.testing.assert_array_equal(record.costs, reference.costs)
