"""Cross-module integration tests: the full paper pipeline at tiny scale."""

import numpy as np
import pytest

from repro.baselines import GAConfig, GeneticAlgorithm, RandomSearch
from repro.circuits import adder_task, gray_to_binary_task, realistic_adder_task
from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig
from repro.opt import (
    CircuitSimulator,
    aggregate_curves,
    run_comparison,
    run_method,
    vae_speedup,
)
from repro.synth import CommercialTool, scaled_library


def vae_factory(_seed):
    return CircuitVAEOptimizer(
        CircuitVAEConfig(
            latent_dim=6, base_channels=4, hidden_dim=32, initial_samples=20,
            first_round_epochs=8, train=TrainConfig(epochs=4, batch_size=16),
            search=SearchConfig(num_parallel=8, num_steps=20, capture_every=10),
        )
    )


class TestRunnerPipeline:
    def test_run_method_produces_records(self):
        task = adder_task(8, 0.66)
        records = run_method(vae_factory, task, budget=50, seeds=[0, 1])
        assert len(records) == 2
        assert all(r.num_simulations == 50 for r in records)
        assert all(r.method == "CircuitVAE" for r in records)
        assert records[0].costs.tolist() != records[1].costs.tolist()

    def test_run_comparison_pairs_seeds(self):
        task = adder_task(8, 0.66)
        results = run_comparison(
            {
                "GA": lambda s: GeneticAlgorithm(GAConfig(population_size=10)),
                "Random": lambda s: RandomSearch(),
            },
            task,
            budget=40,
            num_seeds=2,
        )
        assert set(results) == {"GA", "Random"}
        assert results["GA"][0].seed == results["Random"][0].seed

    def test_aggregate_and_speedup_pipeline(self):
        task = adder_task(8, 0.66)
        vae_records = run_method(vae_factory, task, budget=60, seeds=[0, 1])
        ga_records = run_method(
            lambda s: GeneticAlgorithm(GAConfig(population_size=10)),
            task, budget=60, seeds=[0, 1],
        )
        agg = aggregate_curves(vae_records, budgets=[20, 40, 60])
        assert np.all(np.diff(agg["median"]) <= 1e-12)  # monotone improvement
        speedups = vae_speedup(vae_records, ga_records)
        assert len(speedups) == 2
        assert all(s > 0 for s in speedups)


class TestGrayPipeline:
    def test_vae_on_gray_task(self):
        """Sec. 5.5: the identical machinery optimizes a different circuit
        type by swapping the cell mapping."""
        task = gray_to_binary_task(n=8)
        sim = CircuitSimulator(task, budget=50)
        best = vae_factory(0).run(sim, np.random.default_rng(0))
        assert best.graph.n == 8
        from repro.prefix import check_gray_to_binary

        assert check_gray_to_binary(best.graph, np.random.default_rng(1))


class TestRealisticPipeline:
    def test_search_then_commercial_eval(self):
        """Sec. 5.4: search with the open flow, evaluate with the
        commercial tool — the domain gap must not destroy the design."""
        task = realistic_adder_task(n=8, delay_weight=0.6)
        sim = CircuitSimulator(task, budget=40)
        best = vae_factory(0).run(sim, np.random.default_rng(2))
        tool = CommercialTool(scaled_library("8nm"), task.io_timing)
        commercial = tool.evaluate(best.graph)
        assert commercial.area_um2 > 0 and commercial.delay_ns > 0
        # The commercial flow is differently tuned, so metrics differ.
        assert commercial.delay_ns != pytest.approx(best.delay_ns, rel=1e-9)


class TestSeedIndependence:
    def test_methods_share_simulator_semantics(self):
        """All methods must count simulations identically (unique designs)."""
        task = adder_task(8, 0.66)
        for factory in (lambda s: RandomSearch(), lambda s: GeneticAlgorithm(GAConfig(population_size=8))):
            records = run_method(factory, task, budget=30, seeds=[3])
            assert records[0].num_simulations == 30
