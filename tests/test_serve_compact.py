"""Tests for cache-shard compaction + GC (repro.serve.compact)."""

import json
import os
import warnings

import pytest

from helpers import unique_random_graphs as unique_graphs

from repro.circuits import adder_task
from repro.engine import EvaluationCache, task_fingerprint
from repro.serve.compact import (
    LOCK_FILENAME,
    compact_cache_dir,
    compact_shard,
)
from repro.utils.locks import PidFileLock


@pytest.fixture
def task():
    return adder_task(8, 0.66)


def fill_cache(cache_dir, task, keys, rewrites=3):
    """A duplicate-heavy shard: every key rewritten ``rewrites`` times."""
    fingerprint = task_fingerprint(task)
    cache = EvaluationCache(cache_dir=str(cache_dir))
    for round_index in range(rewrites):
        for i, key in enumerate(keys):
            cache.put(fingerprint, key, (100.0 + i, 1.0 + round_index))
    return fingerprint


class TestCompactShard:
    def test_dedup_preserves_every_live_key(self, tmp_path, task):
        keys = [g.key() for g in unique_graphs(8, 6)]
        fingerprint = fill_cache(tmp_path, task, keys, rewrites=3)
        shard = tmp_path / f"{fingerprint}.jsonl"
        before = {}
        fresh = EvaluationCache(cache_dir=str(tmp_path))
        for key in keys:
            before[key] = fresh.get(fingerprint, key)

        report = compact_shard(str(shard))
        assert report["lines_before"] == 18
        assert report["lines_after"] == 6
        assert report["duplicates_dropped"] == 12
        assert report["bytes_after"] < report["bytes_before"]

        # every live key survives with its newest metrics
        reloaded = EvaluationCache(cache_dir=str(tmp_path))
        for key in keys:
            assert reloaded.get(fingerprint, key) == before[key]
            assert before[key][1] == 3.0  # the last rewrite won

    def test_live_reader_self_heals_after_compaction(self, tmp_path, task):
        keys = [g.key() for g in unique_graphs(8, 5)]
        fingerprint = fill_cache(tmp_path, task, keys, rewrites=4)
        # a reader whose offsets predate the compaction, with a tiny LRU
        # so lookups actually go through the byte-offset path
        reader = EvaluationCache(cache_dir=str(tmp_path), memory_limit=2)
        expected = {key: reader.get(fingerprint, key) for key in keys}
        compact_shard(str(tmp_path / f"{fingerprint}.jsonl"))
        for key in keys:
            assert reader.get(fingerprint, key) == expected[key]

    def test_age_eviction_drops_old_and_unstamped(self, tmp_path):
        shard = tmp_path / "f.jsonl"
        records = [
            {"k": "aa", "a": 1.0, "d": 1.0},  # unstamped: infinitely old
            {"k": "bb", "a": 2.0, "d": 1.0, "t": 100.0},
            {"k": "cc", "a": 3.0, "d": 1.0, "t": 1000.0},
        ]
        shard.write_text("".join(json.dumps(r) + "\n" for r in records))
        report = compact_shard(
            str(shard), max_age_seconds=500.0, now=1200.0
        )
        assert report["evicted"] == 2  # aa (no stamp) and bb (too old)
        kept = [json.loads(line) for line in shard.read_text().splitlines()]
        assert [r["k"] for r in kept] == ["cc"]

    def test_max_entries_keeps_newest(self, tmp_path):
        shard = tmp_path / "f.jsonl"
        shard.write_text(
            "".join(
                json.dumps({"k": f"{i:02x}", "a": float(i), "d": 1.0}) + "\n"
                for i in range(8)
            )
        )
        report = compact_shard(str(shard), max_entries=3)
        assert report["evicted"] == 5
        kept = [json.loads(line)["k"] for line in shard.read_text().splitlines()]
        assert kept == ["05", "06", "07"]

    def test_corrupt_lines_are_dropped(self, tmp_path):
        shard = tmp_path / "f.jsonl"
        shard.write_text(
            json.dumps({"k": "aa", "a": 1.0, "d": 2.0}) + "\n" + '{"k": "trunc'
        )
        report = compact_shard(str(shard))
        assert report["corrupt_dropped"] == 1
        assert report["lines_after"] == 1


class TestCompactCacheDir:
    def test_directory_pass_compacts_every_shard(self, tmp_path, task):
        keys = [g.key() for g in unique_graphs(8, 4)]
        fill_cache(tmp_path, task, keys, rewrites=2)
        fill_cache(tmp_path, task.with_delay_weight(0.2), keys, rewrites=2)
        report = compact_cache_dir(str(tmp_path))
        # omega is excluded from the fingerprint, so both fills landed in
        # one shard — but any *.jsonl sibling would be swept too
        assert len(report.shards) >= 1
        assert report.lines_after < report.lines_before
        assert not os.path.exists(str(tmp_path / LOCK_FILENAME))

    def test_live_lock_refuses_second_compactor(self, tmp_path, task):
        keys = [g.key() for g in unique_graphs(8, 2)]
        fill_cache(tmp_path, task, keys)
        # a live foreign compactor: our parent process holds the lock
        live_pid = os.getppid() or 1
        (tmp_path / LOCK_FILENAME).write_text(json.dumps({"pid": live_pid}))
        try:
            with pytest.raises(ValueError, match="live process"):
                compact_cache_dir(str(tmp_path))
        finally:
            os.unlink(str(tmp_path / LOCK_FILENAME))

    def test_own_lock_reacquires_silently(self, tmp_path):
        lock = PidFileLock(str(tmp_path / "l.json"))
        lock.acquire()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PidFileLock(str(tmp_path / "l.json")).acquire()
        lock.release()

    def test_stale_lock_is_stolen_with_warning_naming_pid(self, tmp_path, task):
        keys = [g.key() for g in unique_graphs(8, 2)]
        fill_cache(tmp_path, task, keys)
        dead_pid = 2 ** 22 + 54321
        (tmp_path / LOCK_FILENAME).write_text(json.dumps({"pid": dead_pid}))
        with pytest.warns(RuntimeWarning, match=str(dead_pid)):
            report = compact_cache_dir(str(tmp_path))
        assert report.shards
        assert not os.path.exists(str(tmp_path / LOCK_FILENAME))

    def test_not_a_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not a cache directory"):
            compact_cache_dir(str(tmp_path / "missing"))

    def test_hit_rate_survives_compaction(self, tmp_path, task):
        """The serve-smoke invariant, in miniature: metrics served after
        a compaction are the same objects a warm cache served before."""
        fingerprint = task_fingerprint(task)
        graphs = unique_graphs(8, 3)
        writer = EvaluationCache(cache_dir=str(tmp_path))
        for i, graph in enumerate(graphs):
            writer.put(fingerprint, graph.key(), (10.0 + i, 0.5))
            writer.put(fingerprint, graph.key(), (20.0 + i, 0.7))  # rewrite
        compact_cache_dir(str(tmp_path))
        cold = EvaluationCache(cache_dir=str(tmp_path))
        for i, graph in enumerate(graphs):
            assert cold.get(fingerprint, graph.key()) == (20.0 + i, 0.7)
