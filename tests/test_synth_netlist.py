"""Tests for the netlist data structure (repro.synth.netlist)."""

import pytest

from repro.synth import Netlist, nangate45


@pytest.fixture
def lib():
    return nangate45()


def small_netlist(lib):
    """y = AND(a, b); z = INV(y)."""
    nl = Netlist(lib)
    a = nl.add_input("a")
    b = nl.add_input("b")
    y = nl.add_gate(lib.cell("AND2_X1"), [a, b], name="y")
    z = nl.add_gate(lib.cell("INV_X1"), [y], name="z")
    nl.mark_output("z", z)
    return nl, (a, b, y, z)


class TestConstruction:
    def test_driver_and_sinks_consistent(self, lib):
        nl, (a, b, y, z) = small_netlist(lib)
        nl.validate()
        assert nl.net_driver[a] == -1
        assert nl.net_driver[y] == 0
        assert (1, 0) in nl.net_sinks[y]

    def test_wrong_pin_count_raises(self, lib):
        nl = Netlist(lib)
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_gate(lib.cell("AND2_X1"), [a])

    def test_area_sums_cells(self, lib):
        nl, _ = small_netlist(lib)
        expected = lib.cell("AND2_X1").area + lib.cell("INV_X1").area
        assert nl.area() == pytest.approx(expected)

    def test_count_by_function(self, lib):
        nl, _ = small_netlist(lib)
        assert nl.count_by_function() == {"AND2": 1, "INV": 1}

    def test_fanout_counts_pos(self, lib):
        nl, (a, b, y, z) = small_netlist(lib)
        assert nl.fanout(y) == 1
        assert nl.fanout(z) == 1  # primary output counts as a sink


class TestTopologicalOrder:
    def test_respects_dependencies(self, lib):
        nl, _ = small_netlist(lib)
        order = nl.topological_order()
        assert order.index(0) < order.index(1)

    def test_cycle_detection(self, lib):
        nl = Netlist(lib)
        a = nl.add_input("a")
        y = nl.add_gate(lib.cell("AND2_X1"), [a, a], name="y")
        # Manually create a cycle: feed y's output back into itself.
        nl.gates[0].inputs[1] = y
        nl.net_sinks[a].remove((0, 1))
        nl.net_sinks[y].append((0, 1))
        with pytest.raises(ValueError):
            nl.topological_order()


class TestRewrites:
    def test_swap_cell_same_function(self, lib):
        nl, _ = small_netlist(lib)
        nl.swap_cell(0, lib.cell("AND2_X4"))
        assert nl.gates[0].cell.drive == 4

    def test_swap_cell_wrong_function_raises(self, lib):
        nl, _ = small_netlist(lib)
        with pytest.raises(ValueError):
            nl.swap_cell(0, lib.cell("OR2_X1"))

    def test_rewire_sink(self, lib):
        nl, (a, b, y, z) = small_netlist(lib)
        buf_out = nl.add_gate(lib.cell("BUF_X1"), [y], name="ybuf")
        nl.rewire_sink(y, (1, 0), buf_out)
        nl.validate()
        assert nl.gates[1].inputs[0] == buf_out


class TestEvaluate:
    def test_boolean_semantics(self, lib):
        nl, _ = small_netlist(lib)
        assert nl.evaluate({"a": 1, "b": 1})["z"] is False
        assert nl.evaluate({"a": 1, "b": 0})["z"] is True

    def test_aoi21_truth_table(self, lib):
        nl = Netlist(lib)
        a, b, c = (nl.add_input(x) for x in "abc")
        z = nl.add_gate(lib.cell("AOI21_X1"), [a, b, c], name="z")
        nl.mark_output("z", z)
        for va in (0, 1):
            for vb in (0, 1):
                for vc in (0, 1):
                    got = nl.evaluate({"a": va, "b": vb, "c": vc})["z"]
                    assert got == (not ((va and vb) or vc))

    def test_missing_input_raises(self, lib):
        nl, _ = small_netlist(lib)
        with pytest.raises(KeyError):
            nl.evaluate({"a": 1})


class TestVerilogDump:
    def test_contains_ports_and_cells(self, lib):
        nl, _ = small_netlist(lib)
        text = nl.to_verilog("adder")
        assert "module adder" in text
        assert "AND2_X1" in text
        assert "endmodule" in text

    def test_repr(self, lib):
        nl, _ = small_netlist(lib)
        assert "2 gates" in repr(nl)
