"""Tests for the GP surrogate and EI acquisition (repro.baselines.gp)."""

import numpy as np
import pytest

from repro.baselines.gp import (
    GaussianProcess,
    expected_improvement,
    median_lengthscale,
    rbf_kernel,
)


class TestKernel:
    def test_diagonal_is_variance(self):
        x = np.random.default_rng(0).standard_normal((5, 3))
        k = rbf_kernel(x, x, lengthscale=1.0, variance=2.0)
        np.testing.assert_allclose(np.diag(k), 2.0)

    def test_symmetric_psd(self):
        x = np.random.default_rng(1).standard_normal((10, 4))
        k = rbf_kernel(x, x, 1.5, 1.0)
        np.testing.assert_allclose(k, k.T)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-10

    def test_decays_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert rbf_kernel(a, near, 1.0, 1.0)[0, 0] > rbf_kernel(a, far, 1.0, 1.0)[0, 0]


class TestMedianLengthscale:
    def test_positive(self):
        x = np.random.default_rng(2).standard_normal((30, 3))
        assert median_lengthscale(x) > 0

    def test_scales_with_data(self):
        x = np.random.default_rng(3).standard_normal((30, 3))
        assert median_lengthscale(10 * x) > 5 * median_lengthscale(x)


class TestGP:
    def test_interpolates_training_data(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((20, 2))
        y = np.sin(x[:, 0]) + x[:, 1] ** 2
        gp = GaussianProcess(lengthscale=1.0, noise=1e-6).fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.1)

    def test_uncertainty_grows_away_from_data(self):
        x = np.zeros((5, 2))
        y = np.zeros(5)
        gp = GaussianProcess(lengthscale=1.0).fit(x, y)
        _, std_near = gp.predict(np.array([[0.1, 0.0]]))
        _, std_far = gp.predict(np.array([[10.0, 0.0]]))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_mismatched_xy_raises(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            GaussianProcess(noise=0.0)

    def test_generalizes_smooth_function(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-2, 2, size=(60, 1))
        y = np.sin(2 * x[:, 0])
        gp = GaussianProcess(lengthscale=0.8, noise=1e-4).fit(x, y)
        x_test = np.linspace(-1.8, 1.8, 20)[:, None]
        mean, _ = gp.predict(x_test)
        np.testing.assert_allclose(mean, np.sin(2 * x_test[:, 0]), atol=0.1)


class TestEI:
    def test_zero_when_far_worse(self):
        ei = expected_improvement(np.array([100.0]), np.array([0.01]), best=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_predicted_better(self):
        ei = expected_improvement(np.array([-1.0]), np.array([0.1]), best=0.0)
        assert ei[0] > 0.9

    def test_uncertainty_increases_ei_at_same_mean(self):
        low = expected_improvement(np.array([0.5]), np.array([0.01]), best=0.0)
        high = expected_improvement(np.array([0.5]), np.array([2.0]), best=0.0)
        assert high[0] > low[0]
