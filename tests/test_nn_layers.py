"""Tests for Module/layers (repro.nn.layers) and serialization."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModuleDiscovery:
    def test_named_parameters_nested(self, rng):
        mlp = nn.MLP([4, 8, 2], rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert "net.layers.0.weight" in names
        assert "net.layers.0.bias" in names
        assert "net.layers.2.weight" in names
        assert len(names) == 4

    def test_num_parameters(self, rng):
        layer = nn.Linear(10, 5, rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_zero_grad_clears_all(self, rng):
        mlp = nn.MLP([3, 4, 1], rng)
        out = mlp(nn.Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_train_eval_propagates(self, rng):
        seq = nn.Sequential(nn.Linear(2, 2, rng), nn.Dropout(0.5, rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())


class TestStateDict:
    def test_roundtrip(self, rng):
        a = nn.MLP([4, 8, 2], rng)
        b = nn.MLP([4, 8, 2], np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = np.ones((3, 4))
        np.testing.assert_allclose(a(nn.Tensor(x)).numpy(), b(nn.Tensor(x)).numpy())

    def test_mismatch_keys_raises(self, rng):
        a = nn.Linear(2, 3, rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 2))})

    def test_mismatch_shape_raises(self, rng):
        a = nn.Linear(2, 3, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((4, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_save_load_file(self, rng, tmp_path):
        a = nn.MLP([3, 5, 1], rng)
        path = str(tmp_path / "model.npz")
        nn.save_module(a, path)
        b = nn.MLP([3, 5, 1], np.random.default_rng(1))
        nn.load_module(b, path)
        x = np.ones((2, 3))
        np.testing.assert_allclose(a(nn.Tensor(x)).numpy(), b(nn.Tensor(x)).numpy())


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(6, 4, rng)
        out = layer(nn.Tensor(np.zeros((5, 6))))
        assert out.shape == (5, 4)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_conv_layers_shapes(self, rng):
        conv = nn.Conv2d(1, 4, 3, rng, stride=2, padding=1)
        out = conv(nn.Tensor(np.zeros((2, 1, 8, 8))))
        assert out.shape == (2, 4, 4, 4)
        deconv = nn.ConvTranspose2d(4, 1, 4, rng, stride=2, padding=1)
        back = deconv(out)
        assert back.shape == (2, 1, 8, 8)

    def test_flatten(self):
        out = nn.Flatten()(nn.Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_layernorm_normalizes(self, rng):
        ln = nn.LayerNorm(16)
        x = nn.Tensor(rng.standard_normal((4, 16)) * 5 + 3)
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_dropout_train_vs_eval(self, rng):
        drop = nn.Dropout(0.5, rng)
        x = nn.Tensor(np.ones((100, 100)))
        out_train = drop(x).numpy()
        assert (out_train == 0).mean() == pytest.approx(0.5, abs=0.05)
        drop.eval()
        np.testing.assert_array_equal(drop(x).numpy(), x.numpy())

    def test_sequential_indexing(self, rng):
        seq = nn.Sequential(nn.Linear(2, 3, rng), nn.ReLU())
        assert isinstance(seq[1], nn.ReLU)
        assert len(seq) == 2

    def test_mlp_validation(self, rng):
        with pytest.raises(ValueError):
            nn.MLP([5], rng)

    def test_mlp_output_activation(self, rng):
        mlp = nn.MLP([2, 4, 1], rng, output_activation=nn.Sigmoid())
        out = mlp(nn.Tensor(np.zeros((3, 2)))).numpy()
        assert np.all((out > 0) & (out < 1))

    def test_activation_modules(self):
        x = nn.Tensor(np.array([-1.0, 2.0]))
        assert nn.ReLU()(x).numpy().tolist() == [0.0, 2.0]
        np.testing.assert_allclose(nn.Tanh()(x).numpy(), np.tanh([-1.0, 2.0]))
        np.testing.assert_allclose(
            nn.Sigmoid()(x).numpy(), 1 / (1 + np.exp([1.0, -2.0]))
        )
        np.testing.assert_allclose(nn.LeakyReLU(0.2)(x).numpy(), [-0.2, 2.0])
