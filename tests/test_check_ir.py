"""GraphProgram IR verifier tests (repro.check.ir).

The clean direction compiles real programs (an MLP step and the actual
CNN-VAE training step) and asserts zero findings.  The dirty direction
hand-injects each bug class into a copied :class:`ProgramPlan` —
use-before-def schedules, backward disorder, aliasing writes over live
values, illegal fusions — and asserts the verifier names the specific
``ir-*`` rule.  A wiring test proves ``REPRO_IR_VERIFY=1`` runs the
pass inside ``compile_train_step`` at compile time only.
"""

import numpy as np
import pytest

from repro import nn
from repro.check.ir import IR_RULES, verify_program
from repro.nn.compile import ir_verify_enabled


def _rules(findings):
    return {f.rule for f in findings}


@pytest.fixture(scope="module")
def mlp_plan():
    """One compiled MLP train step's plan (module-scoped: compile once)."""
    model = nn.MLP([6, 12, 1], np.random.default_rng(0))
    opt = nn.Adam(model.parameters(), lr=1e-2)

    def step_fn(x, y):
        diff = model(x) - y
        return {"loss": (diff * diff).mean()}

    step = nn.compile_train_step(step_fn, model.parameters(), optimizer=opt)
    rng = np.random.default_rng(1)
    step(rng.standard_normal((8, 6)), rng.standard_normal((8, 1)))
    (program,) = step._programs.values()
    return program.plan


class TestCleanPrograms:
    def test_mlp_program_verifies_clean(self, mlp_plan):
        assert verify_program(mlp_plan) == []

    def test_cnn_vae_train_step_verifies_clean(self):
        """The acceptance criterion: the real CNN-VAE step, zero findings."""
        from repro.core.vae import CircuitVAEModel, VAEConfig

        model = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
            np.random.default_rng(2),
        )
        opt = nn.Adam(model.parameters(), lr=1e-3)

        def step_fn(x_pad, grids, eps, costs):
            return model.training_losses(
                x_pad, grids, eps, costs, beta=1.0, lam=0.1
            )

        step = nn.compile_train_step(
            step_fn, model.parameters(), optimizer=opt, grad_clip=5.0
        )
        rng = np.random.default_rng(3)
        grids = rng.integers(0, 2, size=(4, 8, 8)).astype(np.float64)
        x_pad = model._pad_grids(grids)
        eps = rng.standard_normal((4, model.config.latent_dim))
        costs = rng.standard_normal(4)
        step(x_pad, grids, eps, costs)
        (program,) = step._programs.values()
        findings = verify_program(program)
        assert findings == [], [f.message for f in findings]
        # real programs exercise the interesting cases: fused chains and
        # buffer reuse are present, not vacuously absent
        assert program.plan.fused_links
        assert len(set(program.plan.buffer_token.values())) < len(
            program.plan.buffer_token
        )

    def test_verifier_accepts_program_or_plan(self, mlp_plan):
        # duck-typed: a GraphProgram (with .plan) or a bare plan
        assert verify_program(mlp_plan) == verify_program(
            type("Box", (), {"plan": mlp_plan})()
        )


class TestInjectedBugs:
    def test_use_before_def_on_swapped_schedule(self, mlp_plan):
        plan = mlp_plan.copy()
        # swap a node below one of its op parents
        for j, nid in enumerate(plan.sched):
            op_parents = [
                p
                for p in plan.parents.get(nid, ())
                if plan.kinds.get(p) == "op"
            ]
            if op_parents:
                i = plan.sched.index(op_parents[0])
                plan.sched[i], plan.sched[j] = plan.sched[j], plan.sched[i]
                break
        else:
            pytest.fail("no op-parent edge to swap")
        findings = verify_program(plan)
        assert "ir-use-before-def" in _rules(findings)

    def test_duplicate_scheduling_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        plan.sched = plan.sched + [plan.sched[0]]
        assert "ir-use-before-def" in _rules(verify_program(plan))

    def test_unscheduled_output_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        plan.sched = [nid for nid in plan.sched if nid != plan.loss_id]
        findings = verify_program(plan)
        assert any(
            f.rule == "ir-use-before-def" and f.symbol.startswith("output:")
            for f in findings
        )

    def test_backward_disorder_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        assert len(plan.grad_sched) >= 2, "fixture needs a real backward"
        plan.grad_sched = list(reversed(plan.grad_sched))
        findings = verify_program(plan)
        assert "ir-bad-schedule" in _rules(findings)
        # both failure modes surface: wrong start and parent-before-consumer
        assert any(f.symbol == "grad-start" for f in findings)

    def test_non_grad_node_in_backward_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        no_grad = next(
            nid
            for nid in plan.kinds
            if not plan.requires_grad.get(nid, False)
        )
        plan.grad_sched = plan.grad_sched + [no_grad]
        assert "ir-bad-schedule" in _rules(verify_program(plan))

    def test_aliasing_write_over_live_value_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        pos = {nid: i for i, nid in enumerate(plan.sched)}
        pinned = [
            r
            for r in plan.pinned_roots
            if r in plan.buffer_token and r in pos
        ]
        assert pinned, "fixture needs a pinned, materialized root"
        victim = min(pinned, key=pos.__getitem__)
        overwriter = next(
            nid
            for nid in reversed(plan.sched)
            if plan.root.get(nid) == nid
            and nid in plan.buffer_token
            and pos[nid] > pos[victim]
        )
        plan.buffer_token[overwriter] = plan.buffer_token[victim]
        findings = [
            f for f in verify_program(plan) if f.rule == "ir-overwrite-live"
        ]
        assert findings, "aliased write over a pinned value must be flagged"
        assert "pinned/backward-needed" in findings[0].message

    def test_legitimate_reuse_of_dead_slot_is_not_flagged(self, mlp_plan):
        # the compiler's own arena reuse produces shared tokens between
        # dead and live occupants; the clean fixture must already contain
        # at least one such pair or the rule above proves nothing.
        tokens = list(mlp_plan.buffer_token.values())
        assert len(set(tokens)) < len(tokens)
        assert verify_program(mlp_plan) == []

    def test_illegal_fusion_into_non_elementwise_consumer_is_flagged(
        self, mlp_plan
    ):
        plan = mlp_plan.copy()
        producer, consumer = next(
            (p, nid)
            for nid in plan.sched
            if not plan.elementwise.get(nid, False)
            for p in plan.parents.get(nid, ())
            if plan.kinds.get(p) == "op"
        )
        plan.fused_links = plan.fused_links + [(producer, consumer)]
        findings = [
            f for f in verify_program(plan) if f.rule == "ir-illegal-fusion"
        ]
        assert findings
        assert any("not elementwise" in f.message for f in findings)

    def test_fusion_pinned_producer_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        # forge a link whose producer's value the backward pass still needs
        producer, consumer = next(
            (p, nid)
            for nid in plan.sched
            for p in plan.parents.get(nid, ())
            if plan.kinds.get(p) == "op"
            and (
                plan.root.get(p, p) in plan.pinned_roots
                or p in plan.needed_val
            )
        )
        plan.fused_links = plan.fused_links + [(producer, consumer)]
        findings = [
            f for f in verify_program(plan) if f.rule == "ir-illegal-fusion"
        ]
        assert findings

    def test_fusion_wrong_consumer_is_flagged(self, mlp_plan):
        plan = mlp_plan.copy()
        # the last op cannot be a parent of the first
        a, b = plan.sched[0], plan.sched[-1]
        plan.fused_links = plan.fused_links + [(b, a)]
        findings = [
            f for f in verify_program(plan) if f.rule == "ir-illegal-fusion"
        ]
        assert any("does not read the producer" in f.message for f in findings)

    def test_all_rule_ids_are_documented(self):
        assert set(IR_RULES) == {
            "ir-use-before-def",
            "ir-bad-schedule",
            "ir-overwrite-live",
            "ir-illegal-fusion",
        }


class TestCompileWiring:
    def test_env_knob_toggles(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR_VERIFY", raising=False)
        assert not ir_verify_enabled()
        monkeypatch.setenv("REPRO_IR_VERIFY", "1")
        assert ir_verify_enabled()
        monkeypatch.setenv("REPRO_IR_VERIFY", "0")
        assert not ir_verify_enabled()

    def test_verify_runs_at_compile_time_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR_VERIFY", "1")
        calls = []
        import repro.check.ir as ir_mod

        real = ir_mod.verify_program

        def spy(program):
            calls.append(1)
            return real(program)

        monkeypatch.setattr(ir_mod, "verify_program", spy)

        model = nn.MLP([4, 8, 1], np.random.default_rng(4))
        opt = nn.Adam(model.parameters(), lr=1e-2)

        def step_fn(x, y):
            diff = model(x) - y
            return {"loss": (diff * diff).mean()}

        step = nn.compile_train_step(step_fn, model.parameters(), optimizer=opt)
        rng = np.random.default_rng(5)
        X, Y = rng.standard_normal((8, 4)), rng.standard_normal((8, 1))
        for _ in range(4):
            step(X, Y)
        # one verification at trace time, none per replay
        assert calls == [1]
        assert step.stats.traces == 1 and step.stats.replays == 4

    def test_rejected_program_raises_compile_unsupported(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR_VERIFY", "1")
        import repro.check.ir as ir_mod
        from repro.check.findings import Finding

        monkeypatch.setattr(
            ir_mod,
            "verify_program",
            lambda program: [
                Finding(
                    rule="ir-overwrite-live",
                    severity="error",
                    path="<GraphProgram>",
                    line=0,
                    message="injected",
                )
            ],
        )
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        step = nn.compile_train_step(lambda: {"loss": (a * a).sum()}, [a])
        with pytest.raises(nn.CompileUnsupported, match="ir-overwrite-live"):
            step._compile(())
