"""Tests for functional verification (repro.prefix.verify)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix import (
    gray_encode,
    random_graph,
    ripple_carry,
    simulate_adder,
    simulate_gray_to_binary,
    sklansky,
)


class TestSimulateAdder:
    def test_exact_small_cases(self):
        g = sklansky(8)
        s, c = simulate_adder(g, np.array([3]), np.array([5]))
        assert int(s[0]) == 8 and not c[0]

    def test_carry_out(self):
        g = ripple_carry(4)
        s, c = simulate_adder(g, np.array([15]), np.array([1]))
        assert int(s[0]) == 0 and bool(c[0])

    def test_batched(self):
        g = sklansky(16)
        a = np.arange(100, dtype=np.uint64)
        b = np.arange(100, dtype=np.uint64) * 3
        s, _ = simulate_adder(g, a, b)
        np.testing.assert_array_equal(s, (a + b) & 0xFFFF)

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 2 ** 16 - 1), b=st.integers(0, 2 ** 16 - 1))
    def test_property_matches_integer_addition(self, a, b):
        g = sklansky(16)
        s, c = simulate_adder(g, np.array([a], dtype=np.uint64), np.array([b], dtype=np.uint64))
        total = a + b
        assert int(s[0]) == total & 0xFFFF
        assert bool(c[0]) == bool(total >> 16)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), density=st.floats(0.0, 0.8))
    def test_property_random_legal_graphs_add(self, seed, density):
        """*Every* legal graph must implement addition exactly."""
        rng = np.random.default_rng(seed)
        g = random_graph(11, rng, density)
        a = rng.integers(0, 2 ** 11, size=64, dtype=np.uint64)
        b = rng.integers(0, 2 ** 11, size=64, dtype=np.uint64)
        s, _ = simulate_adder(g, a, b)
        np.testing.assert_array_equal(s, (a + b) & np.uint64(2 ** 11 - 1))


class TestGray:
    def test_gray_encode_known_values(self):
        np.testing.assert_array_equal(
            gray_encode(np.arange(8, dtype=np.uint64)), [0, 1, 3, 2, 6, 7, 5, 4]
        )

    def test_decode_inverts_encode(self):
        g = sklansky(10)
        values = np.arange(1024, dtype=np.uint64)
        decoded = simulate_gray_to_binary(g, gray_encode(values))
        np.testing.assert_array_equal(decoded, values)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_property_random_graphs_decode_gray(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(13, rng, float(rng.random() * 0.6))
        values = rng.integers(0, 2 ** 13, size=64, dtype=np.uint64)
        decoded = simulate_gray_to_binary(g, gray_encode(values))
        np.testing.assert_array_equal(decoded, values)
