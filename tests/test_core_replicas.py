"""Stacked multi-replica training (repro.core.replicas): equivalence,
kill switch, structural fallbacks, and the seed-grid round pool."""

import threading

import numpy as np
import pytest

from repro import nn
from repro.core.dataset import CircuitDataset
from repro.core.replicas import (
    ReplicaRoundPool,
    train_replicas,
    use_stacked_replicas,
)
from repro.core.training import TrainConfig, train_model
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph

CURVES = ("total", "reconstruction", "kl", "cost")
VCFG = VAEConfig(n=8, latent_dim=4, base_channels=2, hidden_dim=16)
CFG = TrainConfig(epochs=2, batch_size=4)
K = 3


def small_dataset(seed, size=12, n=8):
    rng = np.random.default_rng(seed)
    ds = CircuitDataset()
    while len(ds) < size:
        g = random_graph(n, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    return ds


def fixtures(count=K, vcfg=VCFG):
    models = [
        CircuitVAEModel(vcfg, np.random.default_rng(10 + k)) for k in range(count)
    ]
    datasets = [small_dataset(k) for k in range(count)]
    rngs = [np.random.default_rng(20 + k) for k in range(count)]
    optimizers = [nn.Adam(m.parameters(), lr=1e-3) for m in models]
    return models, datasets, rngs, optimizers


def serial_reference(monkeypatch, count=K):
    """Per-replica train_model on fresh fixtures: the contract baseline."""
    monkeypatch.setenv("REPRO_STACKED_REPLICAS", "0")
    models, datasets, rngs, optimizers = fixtures(count)
    stats = [
        train_model(m, d, r, CFG, optimizer=o)
        for m, d, r, o in zip(models, datasets, rngs, optimizers)
    ]
    monkeypatch.delenv("REPRO_STACKED_REPLICAS", raising=False)
    return models, rngs, stats


class TestStackedReplicas:
    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_STACKED_REPLICAS", raising=False)
        assert use_stacked_replicas()
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "0")
        assert not use_stacked_replicas()

    def test_stacked_matches_serial_within_1e10(self, monkeypatch):
        """The acceptance contract: per-replica loss curves and final
        parameters within 1e-10 of training each replica alone."""
        ref_models, ref_rngs, ref_stats = serial_reference(monkeypatch)
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        stats = train_replicas(models, datasets, rngs, CFG, optimizers)
        assert all(s.stacked and s.compiled for s in stats)
        for mine, ref in zip(stats, ref_stats):
            for name in CURVES:
                np.testing.assert_allclose(
                    getattr(mine, name), getattr(ref, name),
                    rtol=1e-10, atol=1e-12,
                )
        for model, ref_model in zip(models, ref_models):
            state, ref_state = model.state_dict(), ref_model.state_dict()
            for name, value in ref_state.items():
                np.testing.assert_allclose(
                    state[name], value, rtol=1e-9, atol=1e-11
                )
        # Each replica's stream advanced exactly as the serial form's.
        for rng, ref_rng in zip(rngs, ref_rngs):
            assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_kill_switch_is_bit_identical_to_serial(self, monkeypatch):
        """REPRO_STACKED_REPLICAS=0 must restore per-replica train_model
        exactly (the opt-out contract)."""
        ref_models, ref_rngs, ref_stats = serial_reference(monkeypatch)
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "0")
        models, datasets, rngs, optimizers = fixtures()
        stats = train_replicas(models, datasets, rngs, CFG, optimizers)
        assert all(not s.stacked for s in stats)
        for mine, ref in zip(stats, ref_stats):
            for name in CURVES:
                np.testing.assert_array_equal(
                    getattr(mine, name), getattr(ref, name)
                )
        for model, ref_model in zip(models, ref_models):
            state, ref_state = model.state_dict(), ref_model.state_dict()
            for name, value in ref_state.items():
                np.testing.assert_array_equal(state[name], value)
        for rng, ref_rng in zip(rngs, ref_rngs):
            assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_single_replica_trains_serially(self, monkeypatch):
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures(count=1)
        stats = train_replicas(models, datasets, rngs, CFG, optimizers)
        assert len(stats) == 1 and not stats[0].stacked

    def test_mismatched_architectures_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        odd = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=2, hidden_dim=24),
            np.random.default_rng(99),
        )
        models[1] = odd
        optimizers[1] = nn.Adam(odd.parameters(), lr=1e-3)
        stats = train_replicas(models, datasets, rngs, CFG, optimizers)
        assert all(not s.stacked for s in stats)
        assert all(len(s.total) == CFG.epochs for s in stats)

    def test_mismatched_optimizer_hyperparams_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        optimizers[2] = nn.Adam(models[2].parameters(), lr=5e-4)
        stats = train_replicas(models, datasets, rngs, CFG, optimizers)
        assert all(not s.stacked for s in stats)

    def test_mismatched_dataset_sizes_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        datasets[0] = small_dataset(7, size=16)
        stats = train_replicas(models, datasets, rngs, CFG, optimizers)
        assert all(not s.stacked for s in stats)

    def test_length_mismatch_raises(self):
        models, datasets, rngs, _ = fixtures()
        with pytest.raises(ValueError):
            train_replicas(models[:2], datasets, rngs, CFG)

    def test_empty_dataset_raises(self):
        models, datasets, rngs, optimizers = fixtures()
        datasets[1] = CircuitDataset()
        with pytest.raises(ValueError):
            train_replicas(models, datasets, rngs, CFG, optimizers)


class TestReplicaRoundPool:
    def _run_wave(self, pool, cells, withdraw=()):
        """One thread per cell, as the seed-grid runner guarantees."""
        results = {}

        def worker(cid, model, ds, rng, opt):
            handle = handles[cid]
            if cid in withdraw:
                handle.withdraw()
                results[cid] = None
                return
            results[cid] = handle.train(model, ds, rng, CFG, opt)

        handles = {cid: pool.handle(cid) for cid in cells}
        threads = [
            threading.Thread(target=worker, args=(cid,) + cells[cid])
            for cid in cells
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "pool rendezvous deadlocked"
        return results

    def test_wave_trains_stacked_and_matches_serial(self, monkeypatch):
        ref_models, _, ref_stats = serial_reference(monkeypatch)
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        cells = {
            cid: (models[cid], datasets[cid], rngs[cid], optimizers[cid])
            for cid in range(K)
        }
        results = self._run_wave(ReplicaRoundPool(), cells)
        assert all(results[cid] is not None for cid in cells)
        assert all(results[cid].stacked for cid in cells)
        for cid in cells:
            for name in CURVES:
                np.testing.assert_allclose(
                    getattr(results[cid], name),
                    getattr(ref_stats[cid], name),
                    rtol=1e-10, atol=1e-12,
                )
        for model, ref_model in zip(models, ref_models):
            state, ref_state = model.state_dict(), ref_model.state_dict()
            for name, value in ref_state.items():
                np.testing.assert_allclose(
                    state[name], value, rtol=1e-9, atol=1e-11
                )

    def test_withdrawn_cell_leaves_group_intact(self, monkeypatch):
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        cells = {
            cid: (models[cid], datasets[cid], rngs[cid], optimizers[cid])
            for cid in range(K)
        }
        results = self._run_wave(ReplicaRoundPool(), cells, withdraw={1})
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert results[0].stacked and results[2].stacked

    def test_singleton_group_returns_none(self, monkeypatch):
        """A lone arrival (everyone else withdrew) trains solo."""
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        cells = {
            cid: (models[cid], datasets[cid], rngs[cid], optimizers[cid])
            for cid in range(K)
        }
        results = self._run_wave(ReplicaRoundPool(), cells, withdraw={0, 2})
        assert results[1] is None

    def test_handle_is_one_shot(self, monkeypatch):
        """Second-round train_model calls must not re-enter the pool."""
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        cells = {
            cid: (models[cid], datasets[cid], rngs[cid], optimizers[cid])
            for cid in range(K)
        }
        pool = ReplicaRoundPool()
        results = self._run_wave(pool, cells)
        assert all(results[cid] is not None for cid in cells)
        handle = pool.handle(99)  # unrelated late registration
        handle._used = True
        assert handle.train(models[0], datasets[0], rngs[0], CFG, optimizers[0]) is None

    def test_checkpointed_cell_withdraws_via_train_model(self, monkeypatch, tmp_path):
        """train_model with a checkpoint_dir withdraws its handle so
        durable resume stays per-cell; the rest of the wave still stacks."""
        monkeypatch.setenv("REPRO_STACKED_REPLICAS", "1")
        models, datasets, rngs, optimizers = fixtures()
        pool = ReplicaRoundPool()
        handles = {cid: pool.handle(cid) for cid in range(K)}
        results = {}

        def pooled(cid):
            stats = train_model(
                models[cid], datasets[cid], rngs[cid], CFG,
                optimizer=optimizers[cid], replica_pool=handles[cid],
            )
            results[cid] = stats

        def checkpointed(cid):
            stats = train_model(
                models[cid], datasets[cid], rngs[cid], CFG,
                optimizer=optimizers[cid], replica_pool=handles[cid],
                checkpoint_dir=str(tmp_path / f"cell{cid}"),
            )
            results[cid] = stats

        threads = [
            threading.Thread(target=pooled, args=(0,)),
            threading.Thread(target=checkpointed, args=(1,)),
            threading.Thread(target=pooled, args=(2,)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "pool rendezvous deadlocked"
        assert results[0].stacked and results[2].stacked
        assert not results[1].stacked
        assert len(results[1].total) == CFG.epochs
