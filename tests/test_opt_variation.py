"""Tests + property tests for variation operators (repro.opt.variation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt.variation import crossover, mutate, random_population
from repro.prefix import check_adder, random_graph, sklansky


class TestMutate:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), rate=st.floats(0.001, 0.5))
    def test_property_children_are_legal_and_functional(self, seed, rate):
        rng = np.random.default_rng(seed)
        parent = random_graph(10, rng, 0.3)
        child = mutate(parent, rng, rate)
        assert child.is_legal()
        assert check_adder(child, rng, trials=8)

    def test_forces_at_least_one_flip(self):
        rng = np.random.default_rng(0)
        parent = sklansky(8)
        # Even at rate 0 a flip is forced (result may legalize back, but
        # usually differs).
        children = [mutate(parent, rng, rate=0.0) for _ in range(20)]
        assert any(c != parent for c in children)


class TestCrossover:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_property_children_are_legal(self, seed):
        rng = np.random.default_rng(seed)
        a = random_graph(10, rng, 0.25)
        b = random_graph(10, rng, 0.45)
        child = crossover(a, b, rng)
        assert child.is_legal()

    def test_width_mismatch_raises(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            crossover(sklansky(8), sklansky(16), rng)

    def test_identical_parents_reproduce(self):
        rng = np.random.default_rng(2)
        a = sklansky(8)
        assert crossover(a, a, rng) == a


class TestRandomPopulation:
    def test_size_and_legality(self):
        rng = np.random.default_rng(3)
        pop = random_population(12, 10, rng)
        assert len(pop) == 10
        assert all(g.is_legal() for g in pop)

    def test_densities_vary(self):
        rng = np.random.default_rng(4)
        pop = random_population(12, 30, rng, density_range=(0.0, 0.8))
        counts = {g.node_count() for g in pop}
        assert len(counts) > 5
