"""Tests for the budgeted simulator facade (repro.opt.simulator)."""

import numpy as np
import pytest

from repro.circuits import adder_task
from repro.opt import BudgetExhausted, CircuitSimulator
from repro.prefix import brent_kung, graph_to_grid, ripple_carry, sklansky


@pytest.fixture
def sim():
    return CircuitSimulator(adder_task(8, 0.66), budget=5)


class TestCaching:
    def test_duplicate_query_is_free(self, sim):
        first = sim.query(sklansky(8))
        second = sim.query(sklansky(8))
        assert sim.num_simulations == 1
        assert first is second

    def test_equivalent_encodings_share_entry(self, sim):
        sim.query(sklansky(8))
        # Same circuit arriving as a raw grid.
        sim.query(graph_to_grid(sklansky(8)))
        assert sim.num_simulations == 1

    def test_legalization_applied_to_raw_grids(self, sim):
        raw = np.zeros((8, 8))
        raw[5, 2] = 1.0  # needs parents inserted
        evaluation = sim.query(raw)
        assert evaluation.graph.is_legal()


class TestBudget:
    def test_budget_enforced(self, sim):
        designs = [ripple_carry(8), sklansky(8), brent_kung(8)]
        for d in designs:
            sim.query(d)
        assert sim.remaining == 2
        rng = np.random.default_rng(0)
        from repro.prefix import random_graph

        sim.query(random_graph(8, rng, 0.3))
        sim.query(random_graph(8, rng, 0.5))
        with pytest.raises(BudgetExhausted):
            sim.query(random_graph(8, rng, 0.7))

    def test_cached_queries_allowed_after_exhaustion(self, sim):
        rng = np.random.default_rng(1)
        from repro.prefix import random_graph

        graphs = []
        while not sim.exhausted():
            g = random_graph(8, rng, rng.random() * 0.5)
            sim.query(g)
            graphs.append(g)
        # Cache hit must still work.
        assert sim.query(graphs[0]) is not None

    def test_query_many_stops_at_budget(self, sim):
        rng = np.random.default_rng(2)
        from repro.prefix import random_graph

        designs = [random_graph(8, rng, 0.1 * i) for i in range(1, 10)]
        out = sim.query_many(designs)
        assert sim.num_simulations <= 5
        assert len(out) <= len(designs)

    def test_query_many_serves_cache_hits_past_exhaustion(self, sim):
        from helpers import unique_random_graphs

        designs = unique_random_graphs(8, 7, seed=3)
        # Duplicates placed *after* the budget-exhausting prefix must be
        # served from cache, not dropped (the docstring's promise).
        batch = designs + [designs[0], designs[4]]
        out = sim.query_many(batch)
        assert sim.num_simulations == 5
        assert len(out) == 7  # 5 new + 2 cached duplicates
        assert out[-2] is out[0]
        assert out[-1] is out[4]

    def test_query_plan_marks_refusals(self, sim):
        from helpers import unique_random_graphs

        designs = unique_random_graphs(8, 7, seed=4)
        plan = sim.query_plan(designs)
        assert [e is None for e in plan] == [False] * 5 + [True] * 2

    def test_unlimited_budget(self):
        sim = CircuitSimulator(adder_task(8, 0.5), budget=None)
        assert sim.remaining is None
        assert not sim.exhausted()


class TestHistory:
    def test_history_and_best(self, sim):
        sim.query(ripple_carry(8))
        sim.query(sklansky(8))
        assert len(sim.history) == 2
        best = sim.best()
        assert best.cost == min(e.cost for e in sim.history)

    def test_best_cost_curve_monotone(self, sim):
        for g in (ripple_carry(8), sklansky(8), brent_kung(8)):
            sim.query(g)
        curve = sim.best_cost_curve()
        assert len(curve) == 3
        assert all(a >= b for a, b in zip(curve[:-1], curve[1:]))

    def test_best_on_empty_raises(self, sim):
        with pytest.raises(ValueError):
            sim.best()

    def test_sim_index_increments(self, sim):
        e1 = sim.query(ripple_carry(8))
        e2 = sim.query(sklansky(8))
        assert (e1.sim_index, e2.sim_index) == (1, 2)
