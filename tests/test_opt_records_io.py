"""Tests for run-record persistence (repro.opt.records_io)."""

import json
import os

import numpy as np
import pytest

from repro.opt import (
    Evaluation,
    RunRecord,
    append_evaluations,
    load_evaluations,
    load_records,
    save_records,
)
from repro.prefix import sklansky, ripple_carry
from repro.utils.io import atomic_write_json


def make_record(seed=0):
    rng = np.random.default_rng(seed)
    costs = rng.random(10)
    return RunRecord(
        method="VAE", task_name="adder8@w0.66", seed=seed,
        costs=costs, areas=costs * 100, delays=costs / 10,
    )


class TestRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        path = str(tmp_path / "runs.json")
        records = [make_record(0), make_record(1)]
        save_records(path, records)
        loaded = load_records(path)
        assert len(loaded) == 2
        for original, restored in zip(records, loaded):
            assert restored.method == original.method
            assert restored.seed == original.seed
            np.testing.assert_array_equal(restored.costs, original.costs)
            np.testing.assert_array_equal(restored.delays, original.delays)

    def test_loaded_records_support_statistics(self, tmp_path):
        from repro.opt import aggregate_curves

        path = str(tmp_path / "runs.json")
        save_records(path, [make_record(0), make_record(1)])
        agg = aggregate_curves(load_records(path), budgets=[5, 10])
        assert agg["median"].shape == (2,)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "runs.json")
        save_records(path, [make_record()])
        assert load_records(path)[0].method == "VAE"


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "runs.json")
        save_records(path, [make_record()])
        save_records(path, [make_record(1)])  # overwrite goes through temp too
        assert os.listdir(tmp_path) == ["runs.json"]

    def test_failed_write_preserves_existing_file(self, tmp_path):
        path = str(tmp_path / "runs.json")
        save_records(path, [make_record()])
        before = open(path).read()
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})  # unserializable
        assert open(path).read() == before
        assert os.listdir(tmp_path) == ["runs.json"]  # no stray temp files

    def test_atomic_write_creates_parents(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "meta.json")
        atomic_write_json(path, {"ok": 1})
        assert json.load(open(path)) == {"ok": 1}


def make_evaluations(n=4):
    graphs = [sklansky(n), ripple_carry(n)]
    return [
        Evaluation(
            graph=graph, cost=1.5 + i, area_um2=10.0 * (i + 1),
            delay_ns=0.25 * (i + 1), sim_index=i + 1,
        )
        for i, graph in enumerate(graphs)
    ]


class TestEvaluationHistory:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "cell" / "history.jsonl")
        evaluations = make_evaluations()
        assert append_evaluations(path, evaluations[:1]) == 1
        assert append_evaluations(path, evaluations[1:]) == 1  # incremental
        loaded = load_evaluations(path)
        assert len(loaded) == 2
        for original, restored in zip(evaluations, loaded):
            assert restored.graph == original.graph
            assert restored.cost == original.cost
            assert restored.area_um2 == original.area_um2
            assert restored.delay_ns == original.delay_ns
            assert restored.sim_index == original.sim_index

    def test_truncated_final_line_is_skipped_with_warning(self, tmp_path):
        # the signature of a writer SIGKILLed mid-append
        path = str(tmp_path / "history.jsonl")
        append_evaluations(path, make_evaluations())
        with open(path, "a") as handle:
            handle.write('{"graph": {"version": 1, "n"')  # no newline, cut off
        with pytest.warns(RuntimeWarning, match="corrupt evaluation-history"):
            loaded = load_evaluations(path)
        assert len(loaded) == 2

    def test_blank_lines_ignored(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_evaluations(path, make_evaluations()[:1])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_evaluations(path)) == 1


class TestValidation:
    def test_version_check(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"version": 42, "records": []}, fh)
        with pytest.raises(ValueError):
            load_records(path)

    def test_corrupt_lengths_rejected(self, tmp_path):
        path = str(tmp_path / "corrupt.json")
        payload = {
            "version": 1,
            "records": [{
                "method": "X", "task_name": "t", "seed": 0,
                "costs": [1.0, 2.0], "areas": [1.0], "delays": [1.0, 2.0],
            }],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError):
            load_records(path)
