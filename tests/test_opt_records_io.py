"""Tests for run-record persistence (repro.opt.records_io)."""

import json

import numpy as np
import pytest

from repro.opt import RunRecord, load_records, save_records


def make_record(seed=0):
    rng = np.random.default_rng(seed)
    costs = rng.random(10)
    return RunRecord(
        method="VAE", task_name="adder8@w0.66", seed=seed,
        costs=costs, areas=costs * 100, delays=costs / 10,
    )


class TestRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        path = str(tmp_path / "runs.json")
        records = [make_record(0), make_record(1)]
        save_records(path, records)
        loaded = load_records(path)
        assert len(loaded) == 2
        for original, restored in zip(records, loaded):
            assert restored.method == original.method
            assert restored.seed == original.seed
            np.testing.assert_array_equal(restored.costs, original.costs)
            np.testing.assert_array_equal(restored.delays, original.delays)

    def test_loaded_records_support_statistics(self, tmp_path):
        from repro.opt import aggregate_curves

        path = str(tmp_path / "runs.json")
        save_records(path, [make_record(0), make_record(1)])
        agg = aggregate_curves(load_records(path), budgets=[5, 10])
        assert agg["median"].shape == (2,)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "runs.json")
        save_records(path, [make_record()])
        assert load_records(path)[0].method == "VAE"


class TestValidation:
    def test_version_check(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"version": 42, "records": []}, fh)
        with pytest.raises(ValueError):
            load_records(path)

    def test_corrupt_lengths_rejected(self, tmp_path):
        path = str(tmp_path / "corrupt.json")
        payload = {
            "version": 1,
            "records": [{
                "method": "X", "task_name": "t", "seed": 0,
                "costs": [1.0, 2.0], "areas": [1.0], "delays": [1.0, 2.0],
            }],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError):
            load_records(path)
