"""Tests for prior-regularized latent search (repro.core.search)."""

import numpy as np
import pytest

from repro.core.dataset import CircuitDataset
from repro.core.search import (
    SearchConfig,
    initialize_latents,
    latent_gradient_search,
)
from repro.core.vae import CircuitVAEModel, VAEConfig
from repro.prefix import random_graph, sklansky


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    ds = CircuitDataset()
    while len(ds) < 20:
        g = random_graph(8, rng, rng.random() * 0.5)
        ds.add(g, float(g.node_count()))
    model = CircuitVAEModel(
        VAEConfig(n=8, latent_dim=6, base_channels=4, hidden_dim=32),
        np.random.default_rng(1),
    )
    return model, ds


class TestInitialization:
    def test_cost_weighted_shape(self, setup):
        model, ds = setup
        z0 = initialize_latents(model, ds, 12, np.random.default_rng(2))
        assert z0.shape == (12, 6)

    def test_prior_init_is_standard_normal(self, setup):
        model, ds = setup
        z0 = initialize_latents(model, ds, 4000, np.random.default_rng(3), mode="prior")
        assert abs(z0.mean()) < 0.05
        assert abs(z0.std() - 1.0) < 0.05

    def test_fixed_graph_init_clusters(self, setup):
        model, ds = setup
        z0 = initialize_latents(
            model, ds, 16, np.random.default_rng(4), mode="fixed-graph",
            fixed_graph=sklansky(8),
        )
        # All trajectories start near the same posterior mean.
        spread = z0.std(axis=0).mean()
        prior = initialize_latents(model, ds, 16, np.random.default_rng(4), mode="prior")
        assert spread < prior.std(axis=0).mean() * 1.5

    def test_fixed_graph_requires_graph(self, setup):
        model, ds = setup
        with pytest.raises(ValueError):
            initialize_latents(model, ds, 4, np.random.default_rng(5), mode="fixed-graph")

    def test_unknown_mode(self, setup):
        model, ds = setup
        with pytest.raises(ValueError):
            initialize_latents(model, ds, 4, np.random.default_rng(6), mode="warp")


class TestGradientSearch:
    def test_capture_counts(self, setup):
        model, _ = setup
        z0 = np.zeros((5, 6))
        config = SearchConfig(num_steps=50, capture_every=10)
        trace = latent_gradient_search(model, z0, np.random.default_rng(7), config)
        assert trace.trajectories.shape == (5, 5, 6)  # 50/10 captures
        assert trace.captured_latents.shape == (25, 6)
        assert trace.predicted_costs.shape == (25,)

    def test_final_step_always_captured(self, setup):
        model, _ = setup
        config = SearchConfig(num_steps=7, capture_every=3)
        trace = latent_gradient_search(model, np.zeros((2, 6)), np.random.default_rng(8), config)
        assert trace.trajectories.shape[0] == 3  # steps 3, 6, 7

    def test_gammas_within_range(self, setup):
        model, _ = setup
        config = SearchConfig(gamma_low=0.01, gamma_high=0.1)
        trace = latent_gradient_search(model, np.zeros((64, 6)), np.random.default_rng(9), config)
        assert np.all(trace.gammas >= 0.01) and np.all(trace.gammas <= 0.1)

    def test_invalid_gamma_range(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            latent_gradient_search(
                model, np.zeros((2, 6)), np.random.default_rng(10),
                SearchConfig(gamma_low=0.1, gamma_high=0.01),
            )

    def test_high_gamma_keeps_latents_near_origin(self, setup):
        """The Fig. 5 behaviour: stronger prior regularization -> smaller
        final latent norms."""
        model, _ = setup
        rng_init = np.random.default_rng(11)
        z0 = rng_init.standard_normal((16, 6))

        def final_norm(gamma):
            config = SearchConfig(
                num_steps=100, capture_every=100, step_size=0.3,
                gamma_low=gamma, gamma_high=gamma * 1.0000001,
            )
            trace = latent_gradient_search(model, z0, np.random.default_rng(12), config)
            return float(np.linalg.norm(trace.trajectories[-1], axis=1).mean())

        assert final_norm(5.0) < final_norm(1e-4)

    def test_box_constraint_mode(self, setup):
        model, _ = setup
        config = SearchConfig(num_steps=40, capture_every=10, box_constraint=0.5, step_size=0.5)
        trace = latent_gradient_search(model, np.zeros((4, 6)), np.random.default_rng(13), config)
        assert np.all(np.abs(trace.captured_latents) <= 0.5 + 1e-12)

    def test_search_reduces_predicted_cost(self, setup):
        """Gradient descent must actually descend the surrogate."""
        model, ds = setup
        from repro import nn
        from repro.core.training import TrainConfig, train_model

        train_model(model, ds, np.random.default_rng(14), TrainConfig(epochs=10, batch_size=10))
        z0 = initialize_latents(model, ds, 8, np.random.default_rng(15))
        with nn.no_grad():
            before = model.predict_cost(nn.Tensor(z0)).numpy().mean()
        config = SearchConfig(num_steps=60, capture_every=60, step_size=0.1)
        trace = latent_gradient_search(model, z0, np.random.default_rng(16), config)
        assert trace.predicted_costs.mean() < before
