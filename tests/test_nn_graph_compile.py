"""Tests for the graph IR (repro.nn.graph) and compiler (repro.nn.compile)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import losses
from repro.nn.graph import OPS, Trace, active_trace
from repro.nn.tensor import _promotion_warned


class TestRegistry:
    def test_ops_carry_vjp_rules_as_data(self):
        for name, op in OPS.items():
            assert callable(op.forward), name
            assert callable(op.vjp), name

    def test_eager_tensors_record_op_ids_not_closures(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        out = (a * 3.0).exp()
        assert out._op == "exp"
        assert out._backward is None
        assert out._parents[0]._op == "mul"

    def test_backward_uses_registry_rules(self):
        a = nn.Tensor([0.5, -1.5], requires_grad=True)
        (a.relu() * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0])


class TestTrace:
    def test_records_nodes_with_parent_ids(self):
        p = nn.Tensor([1.0, 2.0], requires_grad=True)
        x = nn.Tensor([3.0, 4.0])
        with Trace(params=[p], inputs=[x]) as tr:
            out = (p * x + 1.0).sum()
        kinds = [node.kind for node in tr.nodes]
        assert kinds.count("param") == 1
        assert kinds.count("input") == 1
        assert kinds.count("constant") == 1  # the 1.0 literal
        ops = [node.op for node in tr.nodes if node.kind == "op"]
        assert ops == ["mul", "add", "sum"]
        assert tr.tensor_nodes[id(out)] == tr.nodes[-1].id

    def test_trace_is_scoped_and_thread_local(self):
        assert active_trace() is None
        with Trace() as tr:
            assert active_trace() is tr
        assert active_trace() is None

    def test_closure_ops_mark_trace_unsupported(self):
        a = nn.Tensor([1.0], requires_grad=True)
        with Trace(params=[a]) as tr:
            nn.Tensor._make(a.data * 2, (a,), lambda g: (g * 2,))
        assert tr.unsupported

    def test_compile_rejects_unsupported_trace(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)

        def step():
            doubled = nn.Tensor._make(a.data * 2, (a,), lambda g: (g * 2,))
            return {"loss": doubled.sum()}

        step_fn = nn.compile_train_step(step, [a])
        with pytest.raises(nn.CompileUnsupported):
            step_fn()


class TestCompiledTrainStep:
    def _mlp_setup(self, seed=5):
        model = nn.MLP([6, 16, 16, 1], np.random.default_rng(seed))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        return model, opt

    def test_matches_eager_bitwise_on_mlp(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((32, 6))
        Y = rng.standard_normal((32, 1))

        m1, o1 = self._mlp_setup()
        eager = []
        for _ in range(8):
            diff = m1(nn.Tensor(X)) - nn.Tensor(Y)
            loss = (diff * diff).mean()
            o1.zero_grad()
            loss.backward()
            nn.clip_grad_norm(m1.parameters(), 5.0)
            o1.step()
            eager.append(loss.item())

        m2, o2 = self._mlp_setup()

        def step_fn(x, y):
            diff = m2(x) - y
            return {"loss": (diff * diff).mean()}

        step = nn.compile_train_step(step_fn, m2.parameters(), optimizer=o2, grad_clip=5.0)
        compiled = [step(X, Y)["loss"] for _ in range(8)]
        assert compiled == eager
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_counters_fusion_and_arena(self):
        m, o = self._mlp_setup()

        def step_fn(x, y):
            diff = m(x) - y
            return {"loss": (diff * diff).mean()}

        step = nn.compile_train_step(step_fn, m.parameters(), optimizer=o)
        rng = np.random.default_rng(1)
        X, Y = rng.standard_normal((16, 6)), rng.standard_normal((16, 1))
        for _ in range(3):
            step(X, Y)
        stats = step.stats
        assert stats.traces == 1
        assert stats.replays == 3
        assert stats.fused_chains >= 1
        assert stats.buffers + stats.arena_slots > 0

    def test_shape_guarded_replay_retraces_on_new_signature(self):
        m, o = self._mlp_setup()

        def step_fn(x, y):
            diff = m(x) - y
            return {"loss": (diff * diff).mean()}

        step = nn.compile_train_step(step_fn, m.parameters(), optimizer=o)
        rng = np.random.default_rng(2)
        step(rng.standard_normal((8, 6)), rng.standard_normal((8, 1)))
        step(rng.standard_normal((8, 6)), rng.standard_normal((8, 1)))
        assert step.stats.traces == 1
        step(rng.standard_normal((12, 6)), rng.standard_normal((12, 1)))
        assert step.stats.traces == 2

    def test_requires_loss_key_and_scalar_outputs(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        step = nn.compile_train_step(lambda: {"nope": a.sum()}, [a])
        with pytest.raises(nn.CompileUnsupported):
            step()
        vector = nn.compile_train_step(
            lambda: {"loss": a.sum(), "vec": a * 2.0}, [a]
        )
        with pytest.raises(nn.CompileUnsupported):
            vector()

    def test_params_see_inplace_updates_between_replays(self):
        """Replay reads parameter storage live — no stale weight copies."""
        w = nn.Tensor([2.0], requires_grad=True)
        step = nn.compile_train_step(lambda x: {"loss": (w * x).sum()}, [w])
        assert step(np.array([3.0]))["loss"] == 6.0
        w.data[...] = 5.0
        assert step(np.array([3.0]))["loss"] == 15.0

    def test_vae_losses_compiled_equals_eager(self):
        """The real CircuitVAE step graph: conv encoder/decoder + 3 losses."""
        from repro.core.vae import CircuitVAEModel, VAEConfig

        rng = np.random.default_rng(3)
        grids = (rng.random((8, 8, 8)) > 0.5).astype(float)
        eps = rng.standard_normal((8, 6))
        costs = rng.standard_normal(8)

        def build():
            return CircuitVAEModel(
                VAEConfig(n=8, latent_dim=6, base_channels=4, hidden_dim=16),
                np.random.default_rng(9),
            )

        m1 = build()
        o1 = nn.Adam(m1.parameters(), lr=1e-3)
        x_pad = m1._pad_grids(grids)
        eager = []
        for _ in range(3):
            outs = m1.training_losses(
                nn.Tensor(x_pad), nn.Tensor(grids), nn.Tensor(eps), nn.Tensor(costs),
                beta=0.01, lam=10.0,
            )
            o1.zero_grad()
            outs["loss"].backward()
            nn.clip_grad_norm(m1.parameters(), 5.0)
            o1.step()
            eager.append({k: v.item() for k, v in outs.items()})

        m2 = build()
        o2 = nn.Adam(m2.parameters(), lr=1e-3)
        step = nn.compile_train_step(
            lambda x, t, e, c: m2.training_losses(x, t, e, c, beta=0.01, lam=10.0),
            m2.parameters(),
            optimizer=o2,
            grad_clip=5.0,
        )
        compiled = [step(x_pad, grids, eps, costs) for _ in range(3)]
        for e_step, c_step in zip(eager, compiled):
            for key in ("loss", "reconstruction", "kl", "cost"):
                assert abs(e_step[key] - c_step[key]) <= 1e-10 * max(
                    1.0, abs(e_step[key])
                )
        assert step.stats.fast_kernels > 0
        assert step.stats.fused_chains > 0


class TestDtypeNormalization:
    def _reset_warning(self):
        _promotion_warned[1][0] = False

    def test_float32_tensors_keep_their_dtype(self):
        x = nn.Tensor(np.ones(3, dtype=np.float32))
        assert x.dtype == np.float32
        assert (x * 2.0).dtype == np.float32  # python scalar adopts f32
        assert x.exp().dtype == np.float32

    def test_mixed_dtype_promotes_to_float64_and_warns_once(self):
        self._reset_warning()
        a = nn.Tensor(np.ones(3, dtype=np.float32))
        b = nn.Tensor(np.ones(3))
        with pytest.warns(RuntimeWarning, match="mixed float32/float64"):
            out = a + b
        assert out.dtype == np.float64
        # Second mixed op: silent (warned once per process).
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _ = a * b

    def test_gradients_follow_tensor_dtype(self):
        self._reset_warning()
        x = nn.Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        assert x.grad.dtype == np.float32

    def test_default_remains_float64(self):
        assert nn.Tensor([1, 2, 3]).dtype == np.float64
        assert nn.Tensor(np.ones(2, dtype=np.int64)).dtype == np.float64


class TestCompilerRobustness:
    def test_unexpected_compiler_errors_become_compile_unsupported(self):
        """padding >= kernel once crashed the stride-1 dx kernel; any
        such internal error must surface as CompileUnsupported so
        train_model can fall back to eager."""
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        x = nn.Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        w = nn.Tensor(rng.standard_normal((2, 2, 3, 3)) * 0.3, requires_grad=True)

        def fn():
            inner = F.conv2d(x, w, stride=1, padding=1)
            return {"loss": (F.conv2d(inner, w, stride=1, padding=4) ** 2).sum()}

        # Eager handles the same graph fine.
        loss = fn()["loss"]
        loss.backward()
        assert x.grad is not None
        x.zero_grad(); w.zero_grad()
        step = nn.compile_train_step(fn, [x, w])
        try:
            step()
        except nn.CompileUnsupported:
            pass  # acceptable: rejected cleanly, eager fallback works
        else:
            # ... or it compiled successfully, in which case grads must
            # match eager (the verify pass guarantees it).
            assert step.stats.traces == 1
        assert step.stats.fallbacks <= 1

    def test_scalar_branches_adopt_tensor_dtype_in_free_functions(self):
        """where/concatenate/stack: raw operands adopt the tensor dtype."""
        _promotion_warned[1][0] = False
        import warnings

        from repro.nn.tensor import concatenate, stack, where

        f32 = nn.Tensor(np.ones(3, dtype=np.float32))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert where(np.array([True, False, True]), 0.0, f32).dtype == np.float32
            assert where(np.array([True, False, True]), f32, 0.0).dtype == np.float32
            assert concatenate([f32, [1.0, 2.0]]).dtype == np.float32
            assert stack([[1.0, 1.0, 1.0], f32]).dtype == np.float32
