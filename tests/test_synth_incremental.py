"""Tests for the delta-aware incremental synthesis pipeline (PR 8).

The contract of :mod:`repro.synth.incremental` is the same as the
batched fast path's: **bit-identity** with the reference flow on every
``PhysicalResult`` field, across circuit types, libraries, mapping
styles, IO profiles and fanout limits — plus honest accounting of which
graphs rode the delta path and which fell back.
"""

import numpy as np
import pytest

from helpers import unique_random_graphs as unique_graphs

from repro.circuits import (
    CircuitTask,
    adder_task,
    gray_to_binary_task,
    lzd_task,
    realistic_adder_task,
)
from repro.engine import EvaluationEngine
from repro.engine.cache import ConeBaseTier, task_fingerprint
from repro.opt.simulator import CircuitSimulator
from repro.prefix import brent_kung, kogge_stone, sklansky
from repro.prefix.legalize import legalize
from repro.synth import (
    IncrementalStats,
    SynthesisOptions,
    incremental_enabled,
    plan_deltas,
    scaled_library,
    synthesize_population,
)


def mutant_population(n, total, seed=42, flips=(1, 3)):
    """Classic parents + legalized bit-flip mutants: the GA/BO shape."""
    bases = [sklansky(n), brent_kung(n), kogge_stone(n)]
    rng = np.random.default_rng(seed)
    graphs = list(bases[: min(3, total)])
    seen = {g.key() for g in graphs}
    while len(graphs) < total:
        base = graphs[int(rng.integers(0, len(bases)))]
        grid = base.grid.copy()
        for _ in range(int(rng.integers(*flips))):
            i = int(rng.integers(2, n))
            j = int(rng.integers(1, i))
            grid[i, j] ^= True
        graph = legalize(grid)
        if graph.key() not in seen:
            seen.add(graph.key())
            graphs.append(graph)
    return graphs


def assert_population_identical(task, graphs):
    """Delta pipeline == reference scalar flow on every result field."""
    scalar = [task.synthesize(graph) for graph in graphs]
    stats = IncrementalStats()
    population = task.evaluate_population(graphs, stats=stats)
    assert len(scalar) == len(population)
    for i, (a, b) in enumerate(zip(scalar, population)):
        assert a.area_um2 == b.area_um2, (i, a.area_um2, b.area_um2)
        assert a.delay_ns == b.delay_ns, (i, a.delay_ns, b.delay_ns)
        assert a.num_gates == b.num_gates, i
        assert a.num_buffers == b.num_buffers, i
        assert a.wirelength_um == b.wirelength_um, i
        assert a.cell_counts == b.cell_counts, i
        assert a.critical_output == b.critical_output, i
    # Accounting is total: every graph is one or the other.
    assert stats.incremental_evals + stats.full_fallbacks == len(graphs)
    return stats


class TestBitIdentity:
    @pytest.mark.parametrize("n", [8, 16])
    def test_adder_mutant_population(self, n):
        stats = assert_population_identical(
            adder_task(n, 0.66), mutant_population(n, 10)
        )
        # Mutants genuinely share cones with the parents.
        assert stats.incremental_evals > 0
        assert stats.cone_hits > 0

    def test_adder_random_population(self):
        # Unrelated random graphs: mostly anchors, still exact.
        assert_population_identical(adder_task(8, 0.5), unique_graphs(8, 8))

    def test_gray_population(self):
        stats = assert_population_identical(
            gray_to_binary_task(n=8), mutant_population(8, 8)
        )
        assert stats.incremental_evals > 0

    def test_lzd_population(self):
        assert_population_identical(lzd_task(n=8), mutant_population(8, 8))

    def test_scaled_library(self):
        task = adder_task(8, 0.5, library=scaled_library("8nm"))
        assert_population_identical(task, mutant_population(8, 8))

    def test_datapath_io_timing(self):
        assert_population_identical(
            realistic_adder_task(8, 0.6), mutant_population(8, 8)
        )

    def test_andor_mapping_style(self):
        task = adder_task(8, 0.66)
        task = CircuitTask(
            name=task.name,
            n=task.n,
            delay_weight=task.delay_weight,
            options=SynthesisOptions(mapping_style="andor"),
        )
        assert_population_identical(task, mutant_population(8, 8))

    @pytest.mark.parametrize("max_fanout", [2, 3])
    def test_tight_fanout_deep_buffer_trees(self, max_fanout):
        # Deep buffer trees route per-graph through the scalar queue
        # loop inside the vectorized builder — still exact.
        task = adder_task(12, 0.66)
        task = CircuitTask(
            name=task.name,
            n=task.n,
            delay_weight=task.delay_weight,
            options=SynthesisOptions(max_fanout=max_fanout),
        )
        assert_population_identical(task, mutant_population(12, 6))

    def test_sizing_passes_zero(self):
        task = adder_task(8, 0.66)
        task = CircuitTask(
            name=task.name,
            n=task.n,
            delay_weight=task.delay_weight,
            options=SynthesisOptions(sizing_passes=0),
        )
        assert_population_identical(task, mutant_population(8, 6))


class TestGuardsAndOptOut:
    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_EVAL", "0")
        assert not incremental_enabled()
        task = adder_task(8, 0.66)
        graphs = mutant_population(8, 8)
        stats = assert_population_identical(task, graphs)
        # Everything fell back; nothing claims to be incremental.
        assert stats.incremental_evals == 0
        assert stats.cone_hits == 0
        assert stats.full_fallbacks == len(graphs)

    def test_single_graph_falls_back(self):
        task = adder_task(8, 0.66)
        stats = IncrementalStats()
        results = task.evaluate_population([sklansky(8)], stats=stats)
        assert results[0].area_um2 == task.synthesize(sklansky(8)).area_um2
        assert stats.full_fallbacks == 1
        assert stats.incremental_evals == 0

    def test_width_mismatch_raises(self):
        task = adder_task(8, 0.66)
        with pytest.raises(ValueError, match="width"):
            task.evaluate_population([sklansky(8), sklansky(16)])

    def test_stats_merge(self):
        a = IncrementalStats(incremental_evals=2, cone_hits=10, full_fallbacks=1)
        b = IncrementalStats(incremental_evals=1, cone_hits=5, full_fallbacks=3)
        a.merge(b)
        assert (a.incremental_evals, a.cone_hits, a.full_fallbacks) == (3, 15, 4)


class TestPlanDeltas:
    def test_first_graph_anchors(self):
        graphs = mutant_population(16, 8)
        matched, anchors, shared = plan_deltas(graphs)
        assert 0 in anchors  # nothing to match against yet
        assert len(matched) + len(anchors) == len(graphs)
        assert len(shared) == len(matched)
        assert all(s > 0 for s in shared)

    def test_mutants_match_their_parent(self):
        parent = sklansky(16)
        grid = parent.grid.copy()
        grid[9, 4] ^= True
        mutant = legalize(grid)
        matched, anchors, shared = plan_deltas([parent, mutant])
        assert anchors == [0]
        assert matched == [1]
        assert shared[0] > 0

    def test_hints_preempt_anchoring(self):
        # With the parent supplied as a hint, the mutant needs no
        # in-batch anchor at all.
        parent = sklansky(16)
        grid = parent.grid.copy()
        grid[9, 4] ^= True
        mutant = legalize(grid)
        matched, anchors, _ = plan_deltas([mutant], base_hints=[parent])
        assert matched == [0]
        assert anchors == []

    def test_unrelated_structures_anchor(self):
        matched, anchors, _ = plan_deltas(
            [sklansky(16), kogge_stone(16)], threshold=0.9
        )
        assert anchors == [0, 1]
        assert matched == []

    def test_threshold_one_requires_exact_cones(self):
        parent = sklansky(16)
        grid = parent.grid.copy()
        grid[9, 4] ^= True
        mutant = legalize(grid)
        matched, anchors, _ = plan_deltas([parent, mutant], threshold=1.0)
        assert matched == []


class TestConeBaseTier:
    def test_remember_and_bases_newest_first(self):
        tier = ConeBaseTier(per_task_limit=3)
        graphs = [sklansky(8), brent_kung(8), kogge_stone(8)]
        tier.remember("fp", graphs[:2])
        tier.remember("fp", graphs[2:])
        bases = tier.bases("fp")
        assert [g.key() for g in bases] == [
            g.key() for g in reversed(graphs)
        ]

    def test_limit_evicts_oldest(self):
        tier = ConeBaseTier(per_task_limit=2)
        graphs = [sklansky(8), brent_kung(8), kogge_stone(8)]
        tier.remember("fp", graphs)
        bases = tier.bases("fp")
        assert len(bases) == 2
        assert bases[0].key() == graphs[2].key()
        assert graphs[0].key() not in {g.key() for g in bases}

    def test_dedup_refreshes_recency(self):
        tier = ConeBaseTier(per_task_limit=2)
        a, b = sklansky(8), brent_kung(8)
        tier.remember("fp", [a, b])
        tier.remember("fp", [a])  # refresh a; b is now oldest
        tier.remember("fp", [kogge_stone(8)])
        keys = {g.key() for g in tier.bases("fp")}
        assert a.key() in keys
        assert b.key() not in keys

    def test_fingerprints_are_isolated(self):
        tier = ConeBaseTier()
        tier.remember("fp1", [sklansky(8)])
        assert tier.bases("fp2") == []

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            ConeBaseTier(per_task_limit=0)


class TestEngineIntegration:
    def _mutants(self, n, total):
        return mutant_population(n, total)

    def test_population_rides_incremental_with_counters(self):
        task = adder_task(16, 0.66)
        graphs = self._mutants(16, 10)
        with EvaluationEngine() as engine:
            simulator = engine.simulator(task)
            evaluations = simulator.query_many(graphs)
            telemetry = simulator.telemetry.as_dict()
        assert telemetry["incremental_evals"] > 0
        assert telemetry["cone_hits"] > 0
        assert (
            telemetry["incremental_evals"] + telemetry["full_fallbacks"]
            == len(graphs)
        )
        assert telemetry["stage_seconds"]["synthesis_incremental"] > 0
        # Same costs as the plain serial simulator.
        reference = CircuitSimulator(task).query_many(graphs)
        for a, b in zip(evaluations, reference):
            assert a.cost == b.cost
            assert a.area_um2 == b.area_um2
            assert a.delay_ns == b.delay_ns

    def test_opt_out_keeps_vectorized_stage(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_EVAL", "0")
        task = adder_task(16, 0.66)
        graphs = self._mutants(16, 8)
        with EvaluationEngine() as engine:
            simulator = engine.simulator(task)
            simulator.query_many(graphs)
            telemetry = simulator.telemetry.as_dict()
        assert telemetry["incremental_evals"] == 0
        assert telemetry["cone_hits"] == 0
        assert "synthesis_incremental" not in telemetry["stage_seconds"]
        assert telemetry["stage_seconds"]["synthesis_vectorized"] > 0

    def test_cone_bases_carry_across_rounds(self):
        # Round 1 seeds the tier; round 2's fresh mutants of the same
        # parents find bases without anchoring a parent again.
        task = adder_task(16, 0.66)
        with EvaluationEngine() as engine:
            simulator = engine.simulator(task)
            simulator.query_many(self._mutants(16, 6))
            fingerprint = task_fingerprint(task)
            assert len(engine.cone_bases.bases(fingerprint)) > 0
            round1 = simulator.telemetry.as_dict()["full_fallbacks"]
            round2_graphs = [
                g
                for g in mutant_population(16, 12, seed=7)
                if g.key() not in {x.key() for x in self._mutants(16, 6)}
            ]
            simulator.query_many(round2_graphs)
            telemetry = simulator.telemetry.as_dict()
        # Round 2 matched everything against remembered bases (no new
        # anchors) or at worst re-anchored strictly fewer graphs.
        assert telemetry["full_fallbacks"] - round1 < len(round2_graphs)

    def test_structural_context_reaches_planner(self):
        # Passing the parents as context lets a batch of pure mutants
        # (parents not in the batch) ride the delta path immediately.
        task = adder_task(16, 0.66)
        parents = [sklansky(16), brent_kung(16), kogge_stone(16)]
        mutants = [g for g in self._mutants(16, 9) if g not in parents][3:]
        with EvaluationEngine() as engine:
            simulator = engine.simulator(task)
            # Warm the run-memo with the parents via a separate engine
            # state: context graphs are hints only, never synthesized.
            simulator.query_many(mutants, structural_context=parents)
            telemetry = simulator.telemetry.as_dict()
        assert telemetry["incremental_evals"] == len(mutants)
        assert telemetry["full_fallbacks"] == 0

    def test_serial_simulator_ignores_context(self):
        task = adder_task(8, 0.5)
        simulator = CircuitSimulator(task)
        graphs = self._mutants(8, 4)
        evaluations = simulator.query_many(
            graphs, structural_context=[sklansky(8)]
        )
        assert len(evaluations) == len(graphs)
