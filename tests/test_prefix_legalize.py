"""Tests + property tests for legalization (repro.prefix.legalize)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix import (
    PrefixGraph,
    check_adder,
    kogge_stone,
    legalize,
    legalize_grid,
    prune_redundant,
    sklansky,
)


def random_raw_grid(n, rng, density):
    grid = rng.random((n, n)) < density
    return grid


class TestLegalize:
    def test_output_is_legal(self):
        rng = np.random.default_rng(0)
        for density in (0.0, 0.1, 0.5, 1.0):
            g = legalize(random_raw_grid(10, rng, density))
            assert g.is_legal()

    def test_idempotent_on_legal_graphs(self):
        for make in (sklansky, kogge_stone):
            g = make(16)
            again = legalize(g.grid)
            assert again == g

    def test_preserves_existing_nodes(self):
        rng = np.random.default_rng(1)
        raw = random_raw_grid(8, rng, 0.3)
        g = legalize(raw)
        tri = np.tril(np.ones((8, 8), dtype=bool), k=-1)
        assert np.all(g.grid[tri] >= raw[tri])

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            legalize_grid(np.zeros((3, 5)))

    def test_empty_grid_becomes_ripple(self):
        g = legalize(np.zeros((6, 6)))
        assert g.node_count() == 5  # ripple-carry: only column 0

    def test_full_grid_is_legal(self):
        g = legalize(np.ones((8, 8)))
        assert g.is_legal()
        # Full lower triangle is a legal "maximal" graph.
        assert g.node_count() == 8 * 7 // 2

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 14), density=st.floats(0.0, 1.0))
    def test_property_legal_and_functional(self, seed, n, density):
        """Any legalized grid is legal AND computes correct sums."""
        rng = np.random.default_rng(seed)
        g = legalize(random_raw_grid(n, rng, density))
        assert g.is_legal()
        assert check_adder(g, rng, trials=16)


class TestPrune:
    def test_prune_never_adds(self):
        rng = np.random.default_rng(2)
        g = legalize(random_raw_grid(12, rng, 0.5))
        p = prune_redundant(g)
        assert p.node_count() <= g.node_count()
        assert np.all(g.grid >= p.grid)

    def test_prune_preserves_function(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            g = legalize(random_raw_grid(10, rng, rng.random()))
            p = prune_redundant(g)
            assert p.is_legal()
            assert check_adder(p, rng, trials=32)

    def test_prune_is_identity_on_lean_structures(self):
        # Sklansky has no dead nodes: every span feeds an output.
        g = sklansky(16)
        assert prune_redundant(g) == g
