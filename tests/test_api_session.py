"""End-to-end tests for Session.run and the python -m repro CLI."""

import os
import warnings

import numpy as np
import pytest

from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec, load_spec
from repro.api.cli import bench_presets, main
from repro.baselines import GAConfig, GeneticAlgorithm, RandomSearch
from repro.circuits import adder_task
from repro.opt import load_records, run_method

TINY_SPEC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "specs", "tiny.json",
)


def assert_bit_identical(record, reference):
    assert record.method == reference.method
    assert record.task_name == reference.task_name
    assert record.seed == reference.seed
    np.testing.assert_array_equal(record.costs, reference.costs)
    np.testing.assert_array_equal(record.areas, reference.areas)
    np.testing.assert_array_equal(record.delays, reference.delays)
    assert record.best_graph == reference.best_graph


def direct_reference_records(spec):
    """The same grid, hand-assembled the pre-API way (plain serial)."""
    factories = {
        "GA": lambda seed: GeneticAlgorithm(GAConfig(population_size=8)),
        "Random": lambda seed: RandomSearch(),
    }
    task = adder_task(spec.task.n, spec.task.delay_weight)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return {
            name: run_method(factory, task, spec.budget, spec.seed_list(),
                             method_name=name)
            for name, factory in factories.items()
        }


class TestSessionRun:
    # A 4-bit task: tiny, but the design space holds only 7 unique legal
    # graphs, so budgets must stay below that.
    def spec(self):
        return ExperimentSpec(
            name="session-e2e",
            task=TaskSpec(circuit_type="adder", n=4, delay_weight=0.66),
            methods=(
                MethodSpec("GA", params={"population_size": 8}),
                MethodSpec("Random"),
            ),
            budget=6,
            num_seeds=2,
            curve_points=3,
        )

    def test_records_bit_identical_to_direct_run_method(self):
        spec = self.spec()
        with Session() as session:
            result = session.run(spec)
        reference = direct_reference_records(spec)
        assert set(result.records) == set(reference)
        for name in reference:
            assert len(result.records[name]) == len(reference[name])
            for record, ref in zip(result.records[name], reference[name]):
                assert_bit_identical(record, ref)

    def test_result_bundles_curves_and_telemetry(self):
        spec = self.spec()
        with Session() as session:
            result = session.run(spec)
        assert result.budgets() == [2, 4, 6]
        curves = result.curves()
        assert set(curves) == {"GA", "Random"}
        assert curves["GA"]["median"].shape == (3,)
        # result telemetry is the sum of the per-record snapshots, so it
        # includes the per-run-only counters (queries, run_hits) too
        assert result.telemetry["synth_calls"] > 0
        assert result.telemetry["queries"] > 0
        assert result.records["GA"][0].telemetry is not None
        assert result.records["GA"][0].telemetry["queries"] > 0
        assert result.telemetry["queries"] == sum(
            r.telemetry["queries"] for rs in result.records.values() for r in rs
        )
        assert set(result.best_costs()) == {"GA", "Random"}

    def test_result_save_round_trips(self, tmp_path):
        spec = self.spec()
        with Session() as session:
            result = session.run(spec)
        path = str(tmp_path / "records.json")
        result.save(path)
        loaded = load_records(path)
        assert len(loaded) == len(result.all_records())
        for restored, original in zip(loaded, result.all_records()):
            assert_bit_identical(restored, original)

    def test_methods_share_the_session_cache(self):
        spec = self.spec()
        with Session() as session:
            result = session.run(spec)
        # 2 methods x 2 seeds all explore the same 6-design space: the
        # engine synthesizes each unique design exactly once.
        assert result.telemetry["synth_calls"] == spec.budget

    def test_telemetry_is_per_run_on_a_reused_session(self):
        spec = self.spec()
        with Session() as session:
            first = session.run(spec)
            second = session.run(spec)
        assert first.telemetry["synth_calls"] == spec.budget
        # the second run is served entirely from the session cache: its
        # delta shows zero synthesis, not the cumulative total.
        assert second.telemetry["synth_calls"] == 0
        assert second.telemetry["memory_hits"] > 0

    def test_parallel_seeds_identical(self):
        spec = self.spec()
        with Session() as serial_session:
            serial = serial_session.run(spec)
        with Session(parallel_seeds=2) as parallel_session:
            parallel = parallel_session.run(spec)
        for name in serial.records:
            for a, b in zip(serial.records[name], parallel.records[name]):
                assert_bit_identical(a, b)


class TestCLI:
    def test_run_tiny_spec_bit_identical(self, tmp_path, capsys):
        # The acceptance path: python -m repro run examples/specs/tiny.json
        out = str(tmp_path / "rec.jsonl")
        assert main(["run", TINY_SPEC_PATH, "--out", out]) == 0
        assert "records written" in capsys.readouterr().out

        spec = load_spec(TINY_SPEC_PATH)
        reference = direct_reference_records(spec)
        loaded = load_records(out)
        by_method = {}
        for record in loaded:
            by_method.setdefault(record.method, []).append(record)
        assert set(by_method) == set(reference)
        for name in reference:
            for record, ref in zip(by_method[name], reference[name]):
                assert_bit_identical(record, ref)

    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in ("CircuitVAE", "GA", "RL", "BO", "Random"):
            assert name in output
        assert "population_size" in output

    def test_methods_json(self, capsys):
        import json

        assert main(["methods", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["GA"]["config"] == "GAConfig"

    def test_bench_list_and_tiny(self, tmp_path, capsys):
        assert main(["bench", "--list"]) == 0
        assert "tiny" in capsys.readouterr().out
        out = str(tmp_path / "bench.json")
        assert main(["bench", "tiny", "--out", out]) == 0
        capsys.readouterr()
        assert len(load_records(out)) == 4  # 2 methods x 2 seeds

    def test_bench_presets_validate(self):
        for name, spec in bench_presets().items():
            assert isinstance(spec, ExperimentSpec)
            assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_checked_in_tiny_json_matches_tiny_preset(self):
        # CI smoke, SKILL.md and the bit-identity tests all assume these
        # two describe the same experiment — keep them pinned together.
        assert load_spec(TINY_SPEC_PATH) == bench_presets()["tiny"]

    def test_invalid_flag_values_get_friendly_errors(self, capsys):
        assert main(["run", TINY_SPEC_PATH, "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err
        assert main(["bench", "tiny", "--parallel-seeds", "0"]) == 2
        assert "parallel_seeds" in capsys.readouterr().err

    def test_bad_inputs_exit_nonzero(self, tmp_path, capsys):
        assert main(["bench", "no-such-preset"]) == 2
        assert "unknown preset" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "unknown_key": 1}')
        assert main(["run", str(bad)]) == 2
        assert "unknown" in capsys.readouterr().err
        assert main(["run", str(tmp_path / "missing.json")]) == 2
