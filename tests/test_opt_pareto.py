"""Tests for Pareto utilities (repro.opt.pareto)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt.pareto import dominates, hypervolume_2d, pareto_evaluations, pareto_front
from repro.opt.simulator import Evaluation
from repro.prefix import sklansky


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((2, 2), (1, 1))

    def test_equal_points_not_strict(self):
        assert not dominates((1, 1), (1, 1), strict=True)
        assert dominates((1, 1), (1, 1), strict=False)

    def test_tradeoff_incomparable(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))


class TestParetoFront:
    def test_simple_front(self):
        points = [(1, 5), (2, 3), (3, 4), (4, 1), (5, 2)]
        assert pareto_front(points) == [(1, 5), (2, 3), (4, 1)]

    def test_duplicates_collapsed(self):
        assert pareto_front([(1, 1), (1, 1)]) == [(1, 1)]

    def test_empty(self):
        assert pareto_front([]) == []

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), count=st.integers(1, 40))
    def test_property_front_is_mutually_nondominated(self, seed, count):
        rng = np.random.default_rng(seed)
        points = [tuple(p) for p in rng.random((count, 2))]
        front = pareto_front(points)
        # No front member dominates another.
        for a in front:
            for b in front:
                if a != b:
                    assert not dominates(a, b)
        # Every input point is dominated-or-tied by some front member.
        for p in points:
            assert any(dominates(f, p, strict=False) for f in front)


class TestParetoEvaluations:
    def _ev(self, area, delay, cost=0.0):
        return Evaluation(
            graph=sklansky(8), cost=cost, area_um2=area, delay_ns=delay, sim_index=0
        )

    def test_filters_dominated(self):
        evals = [self._ev(1, 5), self._ev(2, 2), self._ev(3, 3)]
        front = pareto_evaluations(evals)
        assert [(e.area_um2, e.delay_ns) for e in front] == [(1, 5), (2, 2)]

    def test_deduplicates(self):
        evals = [self._ev(1, 1), self._ev(1, 1)]
        assert len(pareto_evaluations(evals)) == 1


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([(1, 1)], reference=(3, 3)) == pytest.approx(4.0)

    def test_two_points(self):
        # (1,2) and (2,1) vs ref (3,3): 2*1 + 1*1 + 1*1 = strips: (3-1)*(3-2)=2, (3-2)*(2-1)=1 -> 3
        assert hypervolume_2d([(1, 2), (2, 1)], reference=(3, 3)) == pytest.approx(3.0)

    def test_better_front_has_larger_volume(self):
        good = hypervolume_2d([(1, 1)], reference=(4, 4))
        bad = hypervolume_2d([(3, 3)], reference=(4, 4))
        assert good > bad

    def test_invalid_reference_raises(self):
        with pytest.raises(ValueError):
            hypervolume_2d([(5, 5)], reference=(3, 3))

    def test_empty_front(self):
        assert hypervolume_2d([], reference=(1, 1)) == 0.0
