"""Tests for latent diagnostics (repro.core.analysis)."""

import numpy as np
import pytest

from repro.core import (
    CircuitDataset,
    CircuitVAEModel,
    TrainConfig,
    VAEConfig,
    cost_rank_correlation,
    diagnose,
    reconstruction_accuracy,
    train_model,
)
from repro.prefix import random_graph


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    ds = CircuitDataset()
    while len(ds) < 40:
        g = random_graph(8, rng, rng.random() * 0.6)
        ds.add(g, float(g.node_count()))
    model = CircuitVAEModel(
        VAEConfig(n=8, latent_dim=8, base_channels=4, hidden_dim=48),
        np.random.default_rng(1),
    )
    train_model(model, ds, np.random.default_rng(2), TrainConfig(epochs=80, batch_size=16, lr=2e-3))
    return model, ds


class TestRankCorrelation:
    def test_perfect_correlation(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert cost_rank_correlation(x, x * 10 + 5) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.array([1.0, 2.0, 3.0])
        assert cost_rank_correlation(x, -x) == pytest.approx(-1.0)

    def test_degenerate_inputs(self):
        assert cost_rank_correlation(np.array([1.0]), np.array([2.0])) == 0.0
        assert cost_rank_correlation(np.ones(5), np.ones(5)) == 0.0

    def test_monotone_transform_invariant(self):
        rng = np.random.default_rng(3)
        x = rng.random(50)
        assert cost_rank_correlation(x, np.exp(x)) == pytest.approx(1.0)


class TestDiagnose:
    def test_trained_model_is_healthy(self, trained):
        model, ds = trained
        diag = diagnose(model, ds)
        assert diag.reconstruction_accuracy > 0.8
        assert diag.cost_rank_correlation > 0.5
        assert diag.latent_dim_active >= 2
        assert diag.mean_latent_norm > 0
        assert diag.healthy()

    def test_untrained_model_is_not(self):
        rng = np.random.default_rng(4)
        ds = CircuitDataset()
        while len(ds) < 10:
            g = random_graph(8, rng, rng.random() * 0.5)
            ds.add(g, float(g.node_count()))
        model = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=8, base_channels=4, hidden_dim=48),
            np.random.default_rng(5),
        )
        diag = diagnose(model, ds)
        assert diag.cost_rank_correlation < 0.9  # untrained: no reliable ranking

    def test_needs_two_points(self):
        model = CircuitVAEModel(
            VAEConfig(n=8, latent_dim=4, base_channels=4, hidden_dim=16),
            np.random.default_rng(6),
        )
        with pytest.raises(ValueError):
            diagnose(model, CircuitDataset())

    def test_reconstruction_accuracy_range(self, trained):
        model, ds = trained
        acc = reconstruction_accuracy(model, ds.grids())
        assert 0.0 <= acc <= 1.0
