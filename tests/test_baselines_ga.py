"""Tests for the genetic-algorithm baseline (repro.baselines.ga)."""

import numpy as np
import pytest

from repro.baselines import GAConfig, GeneticAlgorithm
from repro.circuits import adder_task
from repro.opt import CircuitSimulator


class TestConfig:
    def test_elite_validation(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(GAConfig(population_size=4, elite_count=4))


class TestRun:
    def test_exhausts_budget(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=60)
        GeneticAlgorithm(GAConfig(population_size=12)).run(sim, np.random.default_rng(0))
        assert sim.num_simulations == 60

    def test_improves_over_first_generation(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=120)
        ga = GeneticAlgorithm(GAConfig(population_size=12))
        best = ga.run(sim, np.random.default_rng(1))
        first_gen_best = min(e.cost for e in sim.history[:12])
        assert best.cost <= first_gen_best
        assert ga.generation > 1

    def test_classics_seeded(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=20)
        GeneticAlgorithm(GAConfig(population_size=10)).run(sim, np.random.default_rng(2))
        from repro.prefix import sklansky

        assert any(e.graph == sklansky(8) for e in sim.history)

    def test_no_classics_option(self):
        sim = CircuitSimulator(adder_task(8, 0.66), budget=15)
        GeneticAlgorithm(
            GAConfig(population_size=10, seed_with_classics=False)
        ).run(sim, np.random.default_rng(3))
        from repro.prefix import sklansky, kogge_stone

        graphs = {e.graph for e in sim.history[:10]}
        assert not {sklansky(8), kogge_stone(8)} <= graphs

    def test_reproducible(self):
        def run(seed):
            sim = CircuitSimulator(adder_task(8, 0.66), budget=40)
            GeneticAlgorithm(GAConfig(population_size=8)).run(sim, np.random.default_rng(seed))
            return [e.cost for e in sim.history]

        assert run(5) == run(5)
