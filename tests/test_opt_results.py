"""Tests for run records and paper statistics (repro.opt.results)."""

import numpy as np
import pytest

from repro.opt.results import (
    RunRecord,
    aggregate_curves,
    best_cost_at,
    median_iqr,
    sims_to_reach,
    vae_speedup,
)


def record(costs, method="X", seed=0):
    costs = np.asarray(costs, dtype=float)
    return RunRecord(
        method=method,
        task_name="t",
        seed=seed,
        costs=costs,
        areas=costs * 100,
        delays=costs / 10,
    )


class TestRunRecord:
    def test_best_curve_monotone(self):
        r = record([5, 3, 4, 2, 6])
        np.testing.assert_array_equal(r.best_curve(), [5, 3, 3, 2, 2])

    def test_best_metrics(self):
        r = record([5, 3, 4])
        cost, area, delay = r.best_metrics()
        assert (cost, area, delay) == (3, 300, 0.3)

    def test_best_cost_at_budget(self):
        r = record([5, 3, 4, 2])
        assert best_cost_at(r, 2) == 3
        assert best_cost_at(r, 100) == 2
        assert best_cost_at(r, 0) == float("inf")

    def test_sims_to_reach(self):
        r = record([5, 3, 4, 2])
        assert sims_to_reach(r, 5.0) == 1
        assert sims_to_reach(r, 2.5) == 4
        assert sims_to_reach(r, 1.0) is None

    def test_sims_to_reach_threshold_never_reached_variants(self):
        # just-below the minimum cost: still never reached
        r = record([5, 3, 4, 2])
        assert sims_to_reach(r, np.nextafter(2.0, 0.0)) is None
        # equality counts as reached (<= semantics)
        assert sims_to_reach(r, 2.0) == 4
        # a record with no simulations can never reach anything
        assert sims_to_reach(record([]), 100.0) is None


class TestAggregation:
    def test_aggregate_median_and_quartiles(self):
        records = [record([4, 4, 4]), record([2, 2, 2]), record([3, 3, 3])]
        agg = aggregate_curves(records, budgets=[1, 3])
        np.testing.assert_array_equal(agg["median"], [3, 3])
        assert agg["q25"][0] == pytest.approx(2.5)
        assert agg["q75"][0] == pytest.approx(3.5)

    def test_median_iqr_format(self):
        med, q25, q75 = median_iqr([1.0, 2.0, 3.0, 4.0, 5.0])
        assert med == 3.0 and q25 == 2.0 and q75 == 4.0

    def test_median_iqr_single_element(self):
        # one seed: all three statistics collapse onto the value
        assert median_iqr([7.25]) == (7.25, 7.25, 7.25)

    def test_median_iqr_accepts_any_sequence(self):
        # generators and numpy arrays behave like lists
        assert median_iqr(iter([2.0, 4.0])) == median_iqr(np.array([2.0, 4.0]))


class TestSpeedup:
    def test_speedup_when_vae_is_faster(self):
        # Competitor reaches its best (3.0) at sim 10; VAE reaches <= 3.0 at sim 2.
        other = record([5] * 9 + [3], method="GA")
        vae = record([5, 2], method="VAE")
        (s,) = vae_speedup([vae], [other])
        assert s == pytest.approx(10 / 2)

    def test_speedup_below_one_when_vae_never_matches(self):
        other = record([1.0], method="GA")
        vae = record([5, 4, 3], method="VAE")
        (s,) = vae_speedup([vae], [other])
        assert s == pytest.approx(1 / 3)

    def test_pairing_by_position(self):
        others = [record([3], seed=0), record([2], seed=1)]
        vaes = [record([3], seed=0), record([4, 2], seed=1)]
        speedups = vae_speedup(vaes, others)
        assert speedups == [pytest.approx(1.0), pytest.approx(0.5)]

    def test_speedup_uses_first_time_competitor_reaches_its_best(self):
        # Competitor hits its best (2.0) at sim 2 and again at sim 4:
        # the budget B is the *first* time, per the Table-1 definition.
        other = record([5, 2, 3, 2], method="GA")
        vae = record([4, 2], method="VAE")
        (s,) = vae_speedup([vae], [other])
        assert s == pytest.approx(2 / 2)

    def test_speedup_empty_pairing(self):
        assert vae_speedup([], []) == []

    def test_speedup_extra_records_ignored_by_zip(self):
        # unpaired trailing seeds (a crashed run) are dropped, not mixed
        others = [record([2]), record([1])]
        vaes = [record([2])]
        assert len(vae_speedup(vaes, others)) == 1
