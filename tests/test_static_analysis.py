"""Tier-1 gate: the shipped tree passes its own static analyzer.

Runs the full default scan (src/repro + scripts + benchmarks, all
whole-tree rules armed) against the committed baseline and fails the
suite on any non-baselined finding or stale baseline entry — the same
bar CI's check-smoke job enforces via ``python -m repro check --strict``.
"""

import os

import pytest

from repro.check import BASELINE_NAME, Baseline, run_check, render_text

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def split_findings():
    findings = run_check(ROOT)
    baseline = Baseline.load(os.path.join(ROOT, BASELINE_NAME))
    return baseline.split(findings)


def test_tree_is_clean_modulo_baseline(split_findings):
    active, suppressed, stale = split_findings
    assert active == [], "\n" + render_text(active, suppressed, stale)


def test_baseline_has_no_stale_entries(split_findings):
    _active, _suppressed, stale = split_findings
    assert stale == [], stale


def test_every_baselined_finding_is_justified():
    baseline = Baseline.load(os.path.join(ROOT, BASELINE_NAME))
    for key, justification in baseline.entries.items():
        assert justification.strip(), key
